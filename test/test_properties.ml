(* Cross-module property tests: every theorem of the paper is checked
   against the exact optimum on randomized small instances, and every
   schedule produced by any algorithm is structurally validated. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

(* One reproducible generator for (instance, realization) pairs:
   n in [1, 12], m in [1, 5], alpha in [1, 2.5], estimates in [0.1, 10],
   actual times drawn at the interval extremes (the worst-case shape used
   throughout the paper's proofs) or uniformly. *)
let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 1 5 in
    let* alpha = float_range 1.0 2.5 in
    let* ests = array_size (return n) (float_range 0.1 10.0) in
    let* sizes = array_size (return n) (float_range 0.1 5.0) in
    let* extreme = bool in
    let* seed = int_bound 1_000_000 in
    return (m, alpha, ests, sizes, extreme, seed))

let scenario_print (m, alpha, ests, sizes, extreme, seed) =
  Printf.sprintf "m=%d alpha=%.3f ests=[%s] sizes=[%s] extreme=%b seed=%d" m
    alpha
    (String.concat ";" (Array.to_list (Array.map string_of_float ests)))
    (String.concat ";" (Array.to_list (Array.map string_of_float sizes)))
    extreme seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

let build (m, alpha, ests, sizes, extreme, seed) =
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ~sizes ests in
  let rng = Rng.create ~seed () in
  let realization =
    if extreme then Realization.extremes ~p_high:0.5 instance rng
    else Realization.uniform_factor instance rng
  in
  (instance, realization)

let opt_of realization =
  Core.Opt.makespan
    ~m:(Instance.m (Realization.instance realization))
    (Realization.actuals realization)

let check_guarantee algo guarantee_of scenario_value =
  let instance, realization = build scenario_value in
  let makespan = Core.Two_phase.makespan algo instance realization in
  let opt = opt_of realization in
  let bound = guarantee_of instance in
  makespan <= (bound *. opt) +. (1e-9 *. opt)

let prop_theorem2 =
  QCheck.Test.make ~name:"Theorem 2: LPT-No Choice within 2a2m/(2a2+m-1)"
    ~count:250 scenario
    (check_guarantee Core.No_replication.lpt_no_choice (fun instance ->
         Core.Guarantees.lpt_no_choice ~m:(Instance.m instance)
           ~alpha:(Instance.alpha_value instance)))

let prop_theorem3 =
  QCheck.Test.make
    ~name:"Theorem 3 + Graham: LPT-No Restriction within min(Th3, 2-1/m)"
    ~count:250 scenario
    (check_guarantee Core.Full_replication.lpt_no_restriction (fun instance ->
         Core.Guarantees.full_replication ~m:(Instance.m instance)
           ~alpha:(Instance.alpha_value instance)))

let prop_graham_ls =
  QCheck.Test.make ~name:"Graham: LS-No Restriction within 2 - 1/m" ~count:250
    scenario
    (check_guarantee Core.Full_replication.ls_no_restriction (fun instance ->
         Core.Guarantees.list_scheduling ~m:(Instance.m instance)))

let prop_theorem4 =
  QCheck.Test.make ~name:"Theorem 4: LS-Group within its guarantee (all k | m)"
    ~count:150 scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let m = Instance.m instance in
      let opt = opt_of realization in
      List.for_all
        (fun k ->
          if m mod k <> 0 then true
          else begin
            let algo = Core.Group_replication.ls_group ~k in
            let makespan = Core.Two_phase.makespan algo instance realization in
            let bound =
              Core.Guarantees.ls_group ~m ~k
                ~alpha:(Instance.alpha_value instance)
            in
            makespan <= (bound *. opt) +. (1e-9 *. opt)
          end)
        [ 1; 2; 3; 4; 5 ])

let prop_every_schedule_validates =
  QCheck.Test.make ~name:"all algorithms produce structurally valid schedules"
    ~count:200 scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let m = Instance.m instance in
      let algorithms =
        [
          Core.No_replication.lpt_no_choice;
          Core.No_replication.ls_no_choice;
          Core.Full_replication.lpt_no_restriction;
          Core.Full_replication.ls_no_restriction;
          Core.Group_replication.ls_group ~k:(Stdlib.max 1 (m / 2));
          Core.Sabo.algorithm ~delta:1.0;
          Core.Abo.algorithm ~delta:1.0;
          Core.Selective.algorithm ~count:2;
        ]
      in
      List.for_all
        (fun algo ->
          let placement, schedule =
            Core.Two_phase.run_full algo instance realization
          in
          Schedule.validate ~placement:(Core.Placement.sets placement) instance
            realization schedule
          = [])
        algorithms)

let prop_makespan_never_below_opt =
  QCheck.Test.make ~name:"no algorithm beats the clairvoyant optimum" ~count:200
    scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let opt = opt_of realization in
      List.for_all
        (fun algo ->
          Core.Two_phase.makespan algo instance realization >= opt -. (1e-9 *. opt))
        [
          Core.No_replication.lpt_no_choice;
          Core.Full_replication.lpt_no_restriction;
          Core.Full_replication.ls_no_restriction;
        ])

let prop_theorem1_adversary_bounded_by_theorem2 =
  (* The strongest adversary cannot push LPT-No Choice past its Theorem-2
     guarantee — exhaustive search over every extreme realization. *)
  QCheck.Test.make ~name:"exhaustive adversary stays below Theorem 2" ~count:25
    QCheck.(
      make ~print:(fun (m, lambda, alpha) ->
          Printf.sprintf "m=%d lambda=%d alpha=%.2f" m lambda alpha)
        Gen.(
          let* m = int_range 2 3 in
          let* lambda = int_range 1 3 in
          let* alpha = float_range 1.0 2.0 in
          return (m, lambda, alpha)))
    (fun (m, lambda, alpha) ->
      let instance =
        Instance.of_ests ~m
          ~alpha:(Uncertainty.alpha alpha)
          (Array.make (lambda * m) 1.0)
      in
      let algo = Core.No_replication.lpt_no_choice in
      let placement = algo.Core.Two_phase.phase1 instance in
      let run r = algo.Core.Two_phase.phase2 instance placement r in
      let opt actuals = Core.Opt.makespan ~m actuals in
      let _, worst = Core.Adversary.exhaustive ~run ~opt instance in
      worst <= Core.Guarantees.lpt_no_choice ~m ~alpha +. 1e-9)

let prop_lemma1_no_restriction =
  (* Lemma 1: if the machine that finishes last under LPT-No Restriction
     runs at least two tasks, then C* >= 2 p_l / alpha^2 where l is the
     task reaching C_max. *)
  QCheck.Test.make ~name:"Lemma 1: C* >= 2 p_l / alpha^2 when l shares a machine"
    ~count:250 scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let schedule =
        Core.Two_phase.run Core.Full_replication.lpt_no_restriction instance
          realization
      in
      (* The task reaching the makespan. *)
      let critical = ref (-1) in
      Array.iteri
        (fun j _ ->
          let e = Schedule.entry schedule j in
          if Float.abs (e.Schedule.finish -. Schedule.makespan schedule) < 1e-12
          then critical := j)
        (Instance.tasks instance);
      if !critical < 0 then true
      else begin
        let machine = Schedule.machine_of schedule !critical in
        let tasks_there =
          List.length (Schedule.machine_tasks schedule machine)
        in
        if tasks_there < 2 then true
        else begin
          let alpha = Instance.alpha_value instance in
          let p_l = Realization.actual realization !critical in
          opt_of realization >= (2.0 *. p_l /. (alpha *. alpha)) -. 1e-9
        end
      end)

let prop_equation2_lpt_structure =
  (* Equation 2 (inside Theorem 2's proof): under the LPT assignment on
     estimates, the estimated makespan satisfies
     C̃_max <= (Σ p̃ + (m-1) p̃_l) / m for the critical task l. *)
  QCheck.Test.make ~name:"Equation 2: LPT estimated makespan bound" ~count:250
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 1 20) (float_range 0.1 10.0)))
    (fun (m, ests) ->
      let ests = Array.of_list ests in
      let r = Core.Assign.lpt ~m ~weights:ests in
      let cmax = Core.Assign.makespan r in
      (* Critical task: last task (in LPT order) on a machine achieving
         the makespan; the proof only needs SOME task on that machine, so
         take the smallest estimate there. *)
      let machine =
        let best = ref 0 in
        Array.iteri (fun i load -> if load > r.Core.Assign.loads.(!best) then best := i)
          r.Core.Assign.loads;
        !best
      in
      let p_l = ref infinity in
      Array.iteri
        (fun j assigned_machine ->
          if assigned_machine = machine then p_l := Float.min !p_l ests.(j))
        r.Core.Assign.assignment;
      let total = Array.fold_left ( +. ) 0.0 ests in
      cmax <= ((total +. (float_of_int (m - 1) *. !p_l)) /. float_of_int m) +. 1e-9)

let prop_sabo_theorems =
  QCheck.Test.make ~name:"Theorems 5-6: SABO within both guarantees" ~count:150
    scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let m = Instance.m instance in
      let alpha = Instance.alpha_value instance in
      let rho = Core.Guarantees.lpt_offline ~m in
      let opt = opt_of realization in
      List.for_all
        (fun delta ->
          let algo = Core.Sabo.algorithm ~delta in
          let makespan = Core.Two_phase.makespan algo instance realization in
          let mem =
            Core.Memory.of_placement instance (Core.Sabo.placement ~delta instance)
          in
          let mem_star =
            Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance)
          in
          makespan
          <= (Core.Guarantees.sabo_makespan ~alpha ~delta ~rho1:rho *. opt)
             +. (1e-9 *. opt)
          && mem
             <= (Core.Guarantees.sabo_memory ~delta ~rho2:rho *. mem_star)
                +. (1e-9 *. mem_star))
        [ 0.5; 1.0; 2.0 ])

let prop_abo_theorems =
  QCheck.Test.make ~name:"Theorems 7-8: ABO within both guarantees" ~count:150
    scenario (fun scenario_value ->
      let instance, realization = build scenario_value in
      let m = Instance.m instance in
      let alpha = Instance.alpha_value instance in
      let rho = Core.Guarantees.lpt_offline ~m in
      let opt = opt_of realization in
      List.for_all
        (fun delta ->
          let algo = Core.Abo.algorithm ~delta in
          let makespan = Core.Two_phase.makespan algo instance realization in
          let mem =
            Core.Memory.of_placement instance (Core.Abo.placement ~delta instance)
          in
          let mem_star =
            Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance)
          in
          makespan
          <= (Core.Guarantees.abo_makespan ~m ~alpha ~delta ~rho1:rho *. opt)
             +. (1e-9 *. opt)
          && mem
             <= (Core.Guarantees.abo_memory ~m ~delta ~rho2:rho *. mem_star)
                +. (1e-9 *. mem_star))
        [ 0.5; 1.0; 2.0 ])

let prop_alpha_one_no_uncertainty_penalty =
  (* With alpha = 1 the online LPT pipeline behaves like offline LPT:
     within 4/3 - 1/3m of the optimum. *)
  QCheck.Test.make ~name:"alpha=1: LPT-No Choice meets the offline LPT bound"
    ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 1 12) (float_range 0.1 10.0)))
    (fun (m, ests) ->
      let ests = Array.of_list ests in
      let instance = Instance.of_ests ~m ~alpha:Uncertainty.alpha_exact ests in
      let realization = Realization.exact instance in
      let makespan =
        Core.Two_phase.makespan Core.No_replication.lpt_no_choice instance
          realization
      in
      let opt = Core.Opt.makespan ~m ests in
      makespan <= (Core.Guarantees.lpt_offline ~m *. opt) +. 1e-9)

let prop_time_scale_invariance =
  (* Uniform bias rescales every actual time by one factor; the engine's
     decisions are scale-free, so every algorithm's makespan must scale
     exactly — competitive ratios are bias-invariant. *)
  QCheck.Test.make ~name:"uniform bias rescales makespans exactly" ~count:150
    QCheck.(
      pair
        (pair (int_range 1 5) (float_range 1.1 2.5))
        (list_of_size Gen.(int_range 1 12) (float_range 0.1 10.0)))
    (fun ((m, alpha), ests) ->
      let ests = Array.of_list ests in
      let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ests in
      let factor = 0.5 *. ((1.0 /. alpha) +. alpha) in
      let biased = Realization.biased ~factor instance in
      let exact = Realization.exact instance in
      List.for_all
        (fun algo ->
          let scaled = Core.Two_phase.makespan algo instance biased in
          let base = Core.Two_phase.makespan algo instance exact in
          Float.abs (scaled -. (factor *. base)) < 1e-9 *. Float.max 1.0 scaled)
        [
          Core.No_replication.lpt_no_choice;
          Core.Full_replication.lpt_no_restriction;
          Core.Full_replication.ls_no_restriction;
          Core.Group_replication.ls_group ~k:(Stdlib.max 1 (m / 2));
          Core.Budgeted.uniform ~k:2;
        ])

let prop_replication_never_hurts_worst_case =
  (* Group guarantee with k groups is at most the k'=m (singleton)
     guarantee when k <= k' — checking the formula's ordering against
     simulated behaviour is Figure 3's job; here we check the formulas. *)
  QCheck.Test.make ~name:"guarantee improves with replication (formula level)"
    ~count:200
    QCheck.(pair (int_range 1 6) (float_range 1.0 3.0))
    (fun (half, alpha) ->
      let m = 2 * half in
      Core.Guarantees.ls_group ~m ~k:1 ~alpha
      <= Core.Guarantees.ls_group ~m ~k:2 ~alpha +. 1e-9
      && Core.Guarantees.ls_group ~m ~k:2 ~alpha
         <= Core.Guarantees.ls_group ~m ~k:m ~alpha +. 1e-9)

let () =
  Alcotest.run "properties"
    [
      ( "replication bound theorems",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem2;
            prop_theorem3;
            prop_graham_ls;
            prop_theorem4;
            prop_theorem1_adversary_bounded_by_theorem2;
            prop_lemma1_no_restriction;
            prop_equation2_lpt_structure;
          ] );
      ( "memory-aware theorems",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sabo_theorems; prop_abo_theorems ] );
      ( "structural",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_every_schedule_validates;
            prop_makespan_never_below_opt;
            prop_alpha_one_no_uncertainty_penalty;
            prop_time_scale_invariance;
            prop_replication_never_hurts_worst_case;
          ] );
    ]
