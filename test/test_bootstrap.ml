(* Tests for bootstrap confidence intervals. *)

module Bootstrap = Usched_stats.Bootstrap
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

let point_estimate_is_statistic () =
  let rng = Rng.create ~seed:1 () in
  let data = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ci = Bootstrap.mean_interval ~rng data in
  close "point = mean" 2.5 ci.Bootstrap.point

let interval_contains_point () =
  let rng = Rng.create ~seed:2 () in
  let data = Array.init 100 (fun i -> sin (float_of_int i)) in
  let ci = Bootstrap.mean_interval ~rng data in
  checkb "ordered" true (ci.Bootstrap.lo <= ci.Bootstrap.hi);
  checkb "contains point (symmetric stat)" true
    (ci.Bootstrap.lo <= ci.Bootstrap.point +. 0.05
    && ci.Bootstrap.point -. 0.05 <= ci.Bootstrap.hi)

let degenerate_data () =
  let rng = Rng.create ~seed:3 () in
  let ci = Bootstrap.mean_interval ~rng (Array.make 10 7.0) in
  close "lo" 7.0 ci.Bootstrap.lo;
  close "hi" 7.0 ci.Bootstrap.hi

let interval_narrows_with_n () =
  let noise seed n =
    let rng = Rng.create ~seed () in
    Array.init n (fun _ -> Rng.float rng)
  in
  let width data =
    let rng = Rng.create ~seed:5 () in
    let ci = Bootstrap.mean_interval ~resamples:2000 ~rng data in
    ci.Bootstrap.hi -. ci.Bootstrap.lo
  in
  checkb "narrower with more data" true (width (noise 4 2000) < width (noise 4 50))

let custom_statistic_max () =
  let rng = Rng.create ~seed:6 () in
  let data = [| 1.0; 5.0; 3.0 |] in
  let ci =
    Bootstrap.interval ~rng ~statistic:(Array.fold_left Float.max neg_infinity)
      data
  in
  close "point is max" 5.0 ci.Bootstrap.point;
  checkb "hi never exceeds sample max" true (ci.Bootstrap.hi <= 5.0 +. 1e-12)

let coverage_sanity () =
  (* The 95% interval for the mean of U(0,1) samples should cover 0.5
     most of the time. *)
  let hits = ref 0 in
  for seed = 0 to 39 do
    let rng = Rng.create ~seed () in
    let data = Array.init 200 (fun _ -> Rng.float rng) in
    let ci = Bootstrap.mean_interval ~resamples:500 ~rng data in
    if ci.Bootstrap.lo <= 0.5 && 0.5 <= ci.Bootstrap.hi then incr hits
  done;
  checkb "covers true mean usually" true (!hits >= 32)

let invalid_inputs () =
  let rng = Rng.create ~seed:7 () in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.interval: empty data")
    (fun () -> ignore (Bootstrap.mean_interval ~rng [||]));
  Alcotest.check_raises "confidence"
    (Invalid_argument "Bootstrap.interval: confidence out of (0, 1)") (fun () ->
      ignore (Bootstrap.mean_interval ~confidence:1.0 ~rng [| 1.0 |]));
  Alcotest.check_raises "resamples"
    (Invalid_argument "Bootstrap.interval: resamples < 1") (fun () ->
      ignore (Bootstrap.mean_interval ~resamples:0 ~rng [| 1.0 |]))

let () =
  Alcotest.run "bootstrap"
    [
      ( "unit",
        [
          Alcotest.test_case "point estimate" `Quick point_estimate_is_statistic;
          Alcotest.test_case "interval sanity" `Quick interval_contains_point;
          Alcotest.test_case "degenerate data" `Quick degenerate_data;
          Alcotest.test_case "narrows with n" `Quick interval_narrows_with_n;
          Alcotest.test_case "custom statistic" `Quick custom_statistic_max;
          Alcotest.test_case "coverage" `Quick coverage_sanity;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
    ]
