(* Tests for instance/realization persistence. *)

module Io = Usched_model.Io
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Workload = Usched_model.Workload
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)

let sample_instance () =
  Instance.of_ests ~m:3
    ~alpha:(Uncertainty.alpha 1.75)
    ~sizes:[| 1.0; 2.5; 0.25 |]
    [| 4.0; 3.5; 0.125 |]

let same_instance a b =
  Instance.n a = Instance.n b
  && Instance.m a = Instance.m b
  && Instance.alpha_value a = Instance.alpha_value b
  && Instance.ests a = Instance.ests b
  && Instance.sizes a = Instance.sizes b

let instance_round_trip () =
  let inst = sample_instance () in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  checkb "round trip preserves everything" true (same_instance inst back)

let instance_round_trip_exact_floats () =
  (* Awkward float values must survive exactly (printed with %.17g). *)
  let inst =
    Instance.of_ests ~m:2
      ~alpha:(Uncertainty.alpha (1.0 +. Float.epsilon))
      [| Float.pi; 1.0 /. 3.0 |]
  in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  checkb "bit-exact floats" true (same_instance inst back)

let realization_round_trip () =
  let inst = sample_instance () in
  let rng = Rng.create ~seed:3 () in
  let realization = Realization.uniform_factor inst rng in
  let back = Io.realization_of_string (Io.realization_to_string realization) in
  checkb "instance preserved" true
    (same_instance inst (Realization.instance back));
  Alcotest.(check (array (float 0.0))) "actuals preserved"
    (Realization.actuals realization)
    (Realization.actuals back)

let file_round_trip () =
  let inst = sample_instance () in
  let path = Filename.temp_file "usched" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save_instance ~path inst;
      checkb "file round trip" true (same_instance inst (Io.load_instance ~path)))

let generated_workloads_round_trip () =
  let rng = Rng.create ~seed:4 () in
  List.iter
    (fun (_, spec) ->
      let inst =
        Workload.generate spec ~n:25 ~m:5 ~alpha:(Uncertainty.alpha 1.5) rng
      in
      let back = Io.instance_of_string (Io.instance_to_string inst) in
      checkb (Workload.spec_name spec) true (same_instance inst back))
    (Workload.standard_suite ~m:5)

let failure_profile_round_trip () =
  let module Failure = Usched_model.Failure in
  let f = Failure.make [| 0.05; 1.0 /. 3.0; 0.0 |] in
  let inst = Instance.with_failure (sample_instance ()) (Some f) in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  checkb "tasks preserved" true (same_instance inst back);
  (match Instance.failure back with
  | Some g -> checkb "profile bit-exact" true (Failure.equal g f)
  | None -> Alcotest.fail "failp field lost");
  (* Realization files carry the profile too. *)
  let r = Realization.exact inst in
  (match
     Instance.failure
       (Realization.instance (Io.realization_of_string (Io.realization_to_string r)))
   with
  | Some g -> checkb "realization keeps the profile" true (Failure.equal g f)
  | None -> Alcotest.fail "failp lost through realization io");
  (* Pre-profile files (no failp field) still parse, with no profile. *)
  let legacy = "# usched-instance m=2 alpha=1.5\nid,est,size\n0,4,1\n" in
  checkb "old headers parse as no profile" true
    (Instance.failure (Io.instance_of_string legacy) = None)

let speed_band_round_trip () =
  let module Speed_band = Usched_model.Speed_band in
  let b =
    Speed_band.make
      [| (0.5, 2.0); (1.0 /. 3.0, Float.pi); (1.0, 1.0) |]
  in
  let inst = Instance.with_speed_band (sample_instance ()) (Some b) in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  checkb "tasks preserved" true (same_instance inst back);
  (match Instance.speed_band back with
  | Some g -> checkb "band bit-exact" true (Speed_band.equal g b)
  | None -> Alcotest.fail "speedband field lost");
  (* Realization files carry the band too. *)
  let r = Realization.exact inst in
  (match
     Instance.speed_band
       (Realization.instance (Io.realization_of_string (Io.realization_to_string r)))
   with
  | Some g -> checkb "realization keeps the band" true (Speed_band.equal g b)
  | None -> Alcotest.fail "speedband lost through realization io");
  (* Pre-band files (no speedband field) still parse, with no band. *)
  let legacy = "# usched-instance m=2 alpha=1.5\nid,est,size\n0,4,1\n" in
  checkb "old headers parse as no band" true
    (Instance.speed_band (Io.instance_of_string legacy) = None);
  (* A band and a failure profile share the header. *)
  let module Failure = Usched_model.Failure in
  let f = Failure.make [| 0.05; 0.1; 0.0 |] in
  let both = Instance.with_failure inst (Some f) in
  let back = Io.instance_of_string (Io.instance_to_string both) in
  checkb "failp and speedband coexist" true
    ((match Instance.failure back with
     | Some g -> Failure.equal g f
     | None -> false)
    &&
    match Instance.speed_band back with
    | Some g -> Speed_band.equal g b
    | None -> false)

let topology_round_trip () =
  let module Topology = Usched_model.Topology in
  let topo =
    Topology.make
      ~zone_of:[| 0; 0; 1 |]
      ~bandwidth:[| [| infinity; 1.0 /. 3.0 |]; [| 1.0 /. 3.0; infinity |] |]
      ~latency:[| [| 0.0; Float.pi |]; [| Float.pi; 0.0 |] |]
  in
  let inst = Instance.with_topology (sample_instance ()) (Some topo) in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  checkb "tasks preserved" true (same_instance inst back);
  (match Instance.topology back with
  | Some g -> checkb "topology bit-exact" true (Topology.equal g topo)
  | None -> Alcotest.fail "topology field lost");
  (* Realization files carry the topology too. *)
  let r = Realization.exact inst in
  (match
     Instance.topology
       (Realization.instance (Io.realization_of_string (Io.realization_to_string r)))
   with
  | Some g -> checkb "realization keeps the topology" true (Topology.equal g topo)
  | None -> Alcotest.fail "topology lost through realization io");
  (* Pre-topology files (no topology field) still parse, with none. *)
  let legacy = "# usched-instance m=2 alpha=1.5\nid,est,size\n0,4,1\n" in
  checkb "old headers parse as no topology" true
    (Instance.topology (Io.instance_of_string legacy) = None)

(* Satellite coverage: all three optional header fields combined —
   failp, speedband, and topology must coexist in one header and every
   one survive the round trip bit-exactly, on random values. *)
let prop_all_optional_fields_round_trip =
  QCheck.Test.make
    ~name:"failp + speedband + topology round trip together bit-exactly"
    ~count:150
    QCheck.(pair (int_range 1 5) (int_range 0 1_000_000))
    (fun (m, seed) ->
      let module Failure = Usched_model.Failure in
      let module Speed_band = Usched_model.Speed_band in
      let module Topology = Usched_model.Topology in
      let rng = Rng.create ~seed () in
      let f = Failure.make (Array.init m (fun _ -> Rng.float rng *. 0.9)) in
      let b =
        Speed_band.make
          (Array.init m (fun _ ->
               let lo = Rng.float_range rng ~lo:0.1 ~hi:1.0 in
               (lo, lo +. Rng.float rng)))
      in
      let zones = 1 + Rng.int rng m in
      let topo =
        Topology.zoned ~m ~zones
          ~bandwidth:(Rng.float_range rng ~lo:0.1 ~hi:10.0)
          ~latency:(Rng.float rng)
          ()
      in
      let inst =
        Instance.of_ests ~failure:f ~speed_band:b ~topology:topo ~m
          ~alpha:(Uncertainty.alpha 2.0)
          (Array.init (1 + Rng.int rng 10) (fun _ ->
               Rng.float_range rng ~lo:0.1 ~hi:9.0))
      in
      let back = Io.instance_of_string (Io.instance_to_string inst) in
      same_instance inst back
      && (match Instance.failure back with
         | Some g -> Failure.equal g f
         | None -> false)
      && (match Instance.speed_band back with
         | Some g -> Speed_band.equal g b
         | None -> false)
      &&
      match Instance.topology back with
      | Some g -> Topology.equal g topo
      | None -> false)

let rejects_bad_topology () =
  List.iter
    (fun (name, topo) ->
      let bad =
        Printf.sprintf
          "# usched-instance m=2 alpha=1.5 topology=%s\nid,est,size\n0,4,1\n"
          topo
      in
      checkb name true
        (try
           ignore (Io.instance_of_string bad);
           false
         with Failure _ -> true))
    [
      ("junk", "zebra");
      ("missing matrices", "0,1");
      ("asymmetric bandwidth", "0,1|inf,1:2,inf|0,0:0,0");
      ("zero bandwidth", "0,1|inf,0:0,inf|0,0:0,0");
      ("negative latency", "0,1|inf,1:1,inf|0,-1:-1,0");
      ("non-contiguous zones", "0,2|inf,1:1,inf|0,0:0,0");
    ];
  (* A machine-count mismatch is caught by instance validation. *)
  let mismatched =
    "# usched-instance m=3 alpha=1.5 topology=0,1|inf,1:1,inf|0,0:0,0\n\
     id,est,size\n\
     0,4,1\n"
  in
  checkb "wrong machine count" true
    (try
       ignore (Io.instance_of_string mismatched);
       false
     with Invalid_argument _ -> true)

let rejects_bad_speed_band () =
  List.iter
    (fun (name, band) ->
      let bad =
        Printf.sprintf
          "# usched-instance m=2 alpha=1.5 speedband=%s\nid,est,size\n0,4,1\n"
          band
      in
      checkb name true
        (try
           ignore (Io.instance_of_string bad);
           false
         with Failure _ -> true))
    [
      ("inverted band", "2:0.5,1");
      ("zero speed", "0:1,1");
      ("nan speed", "nan:1,1");
      ("junk entry", "1,fast");
    ];
  (* A machine-count mismatch is caught by instance validation. *)
  let mismatched =
    "# usched-instance m=2 alpha=1.5 speedband=1,1,1\nid,est,size\n0,4,1\n"
  in
  checkb "wrong machine count" true
    (try
       ignore (Io.instance_of_string mismatched);
       false
     with Invalid_argument _ -> true)

let rejects_bad_failure_profile () =
  List.iter
    (fun (name, failp) ->
      let bad =
        Printf.sprintf "# usched-instance m=2 alpha=1.5 failp=%s\nid,est,size\n0,4,1\n"
          failp
      in
      checkb name true
        (try
           ignore (Io.instance_of_string bad);
           false
         with Failure _ -> true))
    [
      ("out-of-range probability", "0.1,1.5");
      ("nan probability", "nan,0.1");
      ("junk probability", "0.1,zebra");
    ];
  (* A machine-count mismatch is caught by instance validation. *)
  let mismatched =
    "# usched-instance m=2 alpha=1.5 failp=0.1,0.2,0.3\nid,est,size\n0,4,1\n"
  in
  checkb "wrong machine count" true
    (try
       ignore (Io.instance_of_string mismatched);
       false
     with Invalid_argument _ -> true)

let rejects_wrong_kind () =
  let inst = sample_instance () in
  checkb "instance parser rejects realization file" true
    (try
       ignore (Io.instance_of_string (Io.realization_to_string (Realization.exact inst)));
       false
     with Failure _ -> true)

let rejects_malformed_rows () =
  let bad = "# usched-instance m=2 alpha=1.5\nid,est,size\n0,oops,1\n" in
  checkb "bad float" true
    (try
       ignore (Io.instance_of_string bad);
       false
     with Failure _ -> true);
  let missing = "# usched-instance m=2 alpha=1.5\nid,est,size\n0,1\n" in
  checkb "missing field" true
    (try
       ignore (Io.instance_of_string missing);
       false
     with Failure _ -> true)

let rejects_missing_header_field () =
  let no_alpha = "# usched-instance m=2\nid,est,size\n" in
  checkb "missing alpha" true
    (try
       ignore (Io.instance_of_string no_alpha);
       false
     with Failure _ -> true)

let rejects_inadmissible_actuals () =
  (* A tampered realization file whose actual violates the alpha bound
     must be rejected by the underlying validation. *)
  let bad =
    "# usched-realization m=2 alpha=1.5\nid,est,size,actual\n0,4,1,40\n"
  in
  checkb "inadmissible actual" true
    (try
       ignore (Io.realization_of_string bad);
       false
     with Invalid_argument _ -> true)

let prop_random_round_trip =
  QCheck.Test.make ~name:"random instances round trip bit-exactly" ~count:150
    QCheck.(
      triple (int_range 1 6)
        (list_of_size Gen.(int_range 1 25) (float_range 0.001 1e6))
        (float_range 1.0 10.0))
    (fun (m, ests, alpha) ->
      let ests = Array.of_list ests in
      let inst = Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ests in
      let back = Io.instance_of_string (Io.instance_to_string inst) in
      Instance.ests back = ests
      && Instance.m back = m
      && Instance.alpha_value back = alpha)

let prop_realization_round_trip =
  QCheck.Test.make ~name:"random realizations round trip bit-exactly" ~count:150
    QCheck.(pair (int_range 1 4) (int_range 1 20))
    (fun (m, n) ->
      let rng = Rng.create ~seed:(m + (100 * n)) () in
      let inst =
        Instance.of_ests ~m
          ~alpha:(Uncertainty.alpha 2.0)
          (Array.init n (fun _ -> 0.1 +. (10.0 *. Rng.float rng)))
      in
      let r = Realization.uniform_factor inst rng in
      let back = Io.realization_of_string (Io.realization_to_string r) in
      Realization.actuals back = Realization.actuals r)

let () =
  Alcotest.run "io"
    [
      ( "round trips",
        [
          Alcotest.test_case "instance" `Quick instance_round_trip;
          Alcotest.test_case "exact floats" `Quick instance_round_trip_exact_floats;
          Alcotest.test_case "realization" `Quick realization_round_trip;
          Alcotest.test_case "file" `Quick file_round_trip;
          Alcotest.test_case "generated workloads" `Quick
            generated_workloads_round_trip;
          Alcotest.test_case "failure profile" `Quick failure_profile_round_trip;
          Alcotest.test_case "speed band" `Quick speed_band_round_trip;
          Alcotest.test_case "topology" `Quick topology_round_trip;
        ] );
      ( "validation",
        [
          Alcotest.test_case "wrong kind" `Quick rejects_wrong_kind;
          Alcotest.test_case "bad failure profile" `Quick
            rejects_bad_failure_profile;
          Alcotest.test_case "bad speed band" `Quick rejects_bad_speed_band;
          Alcotest.test_case "bad topology" `Quick rejects_bad_topology;
          Alcotest.test_case "malformed rows" `Quick rejects_malformed_rows;
          Alcotest.test_case "missing header" `Quick rejects_missing_header_field;
          Alcotest.test_case "inadmissible actuals" `Quick
            rejects_inadmissible_actuals;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_round_trip;
            prop_realization_round_trip;
            prop_all_optional_fields_round_trip;
          ] );
    ]
