(* Unit and property tests for the greedy assignment machinery. *)

module Assign = Usched_core.Assign

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let ls_round_robin_on_equal () =
  let r = Assign.ls ~m:3 ~weights:[| 1.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check (array int)) "cycles through machines" [| 0; 1; 2; 0 |]
    r.Assign.assignment;
  Alcotest.(check (array (float 1e-12))) "loads" [| 2.0; 1.0; 1.0 |] r.Assign.loads

let ls_least_loaded () =
  let r = Assign.ls ~m:2 ~weights:[| 5.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check (array int)) "fills the lighter machine" [| 0; 1; 1; 1 |]
    r.Assign.assignment

let lpt_sorts_first () =
  (* Weights (1, 5, 3) on 2 machines: LPT assigns 5->m0, 3->m1, 1->m1. *)
  let r = Assign.lpt ~m:2 ~weights:[| 1.0; 5.0; 3.0 |] in
  Alcotest.(check (array int)) "assignment" [| 1; 0; 1 |] r.Assign.assignment;
  close "makespan" 5.0 (Assign.makespan r)

let lpt_classic_example () =
  (* Example where submission-order LS is bad but LPT is optimal. *)
  let weights = [| 1.0; 1.0; 1.0; 3.0 |] in
  let ls = Assign.ls ~m:2 ~weights in
  let lpt = Assign.lpt ~m:2 ~weights in
  close "LS gets 4" 4.0 (Assign.makespan ls);
  close "LPT gets 3" 3.0 (Assign.makespan lpt)

let decreasing_order_ties_by_id () =
  (* ids 0 and 1 tie at 3.0; the smaller id comes first. *)
  Alcotest.(check (array int)) "order" [| 0; 1; 2 |]
    (Assign.decreasing_order [| 3.0; 3.0; 1.0 |])

let empty_weights () =
  let r = Assign.ls ~m:2 ~weights:[||] in
  Alcotest.(check (array int)) "no tasks" [||] r.Assign.assignment;
  close "zero makespan" 0.0 (Assign.makespan r)

let invalid_inputs () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Assign: m must be >= 1")
    (fun () -> ignore (Assign.ls ~m:0 ~weights:[| 1.0 |]));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Assign: negative weight") (fun () ->
      ignore (Assign.ls ~m:1 ~weights:[| -1.0 |]));
  Alcotest.check_raises "bad order" (Invalid_argument "Assign: order is not a permutation")
    (fun () ->
      ignore (Assign.list_assign ~m:1 ~weights:[| 1.0; 1.0 |] ~order:[| 1; 1 |]))

let loads_consistent_with_assignment () =
  let weights = [| 2.0; 7.0; 1.5; 3.0; 3.0; 0.5 |] in
  let r = Assign.lpt ~m:3 ~weights in
  let recomputed = Array.make 3 0.0 in
  Array.iteri
    (fun j i -> recomputed.(i) <- recomputed.(i) +. weights.(j))
    r.Assign.assignment;
  Alcotest.(check (array (float 1e-12))) "loads match" recomputed r.Assign.loads

let prop_lpt_within_graham_bound =
  QCheck.Test.make ~name:"LPT within 4/3 - 1/3m of the exact optimum" ~count:150
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 1 14) (float_range 0.1 20.0)))
    (fun (m, weights) ->
      let weights = Array.of_list weights in
      let r = Assign.lpt ~m ~weights in
      let opt = Usched_core.Opt.makespan ~m weights in
      Assign.makespan r <= (Usched_core.Guarantees.lpt_offline ~m *. opt) +. 1e-9)

let prop_ls_within_graham_bound =
  QCheck.Test.make ~name:"LS within 2 - 1/m of the exact optimum" ~count:150
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 1 14) (float_range 0.1 20.0)))
    (fun (m, weights) ->
      let weights = Array.of_list weights in
      let r = Assign.ls ~m ~weights in
      let opt = Usched_core.Opt.makespan ~m weights in
      Assign.makespan r <= (Usched_core.Guarantees.list_scheduling ~m *. opt) +. 1e-9)

let prop_lpt_never_worse_than_ls_makespan_bound =
  QCheck.Test.make ~name:"all tasks assigned to a valid machine" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 30) (float_range 0.1 20.0)))
    (fun (m, weights) ->
      let weights = Array.of_list weights in
      let r = Assign.lpt ~m ~weights in
      Array.for_all (fun i -> i >= 0 && i < m) r.Assign.assignment)

let () =
  checkb "self-check" true true;
  Alcotest.run "assign"
    [
      ( "unit",
        [
          Alcotest.test_case "LS round robin" `Quick ls_round_robin_on_equal;
          Alcotest.test_case "LS least loaded" `Quick ls_least_loaded;
          Alcotest.test_case "LPT sorts" `Quick lpt_sorts_first;
          Alcotest.test_case "classic LS vs LPT" `Quick lpt_classic_example;
          Alcotest.test_case "order ties" `Quick decreasing_order_ties_by_id;
          Alcotest.test_case "empty" `Quick empty_weights;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
          Alcotest.test_case "loads consistent" `Quick loads_consistent_with_assignment;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lpt_within_graham_bound;
            prop_ls_within_graham_bound;
            prop_lpt_never_worse_than_ls_makespan_bound;
          ] );
    ]
