(* Tests for tables, CSV and ASCII plots. *)

module Table = Usched_report.Table
module Csv = Usched_report.Csv
module Plot = Usched_report.Ascii_plot

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let table_renders_header_and_rows () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_row t [ "m"; "210" ];
  let text = Table.render t in
  checkb "header" true (contains text "name");
  checkb "row 1" true (contains text "alpha");
  checkb "row 2" true (contains text "210");
  checkb "borders" true (contains text "+--")

let table_alignment () =
  let t = Table.create ~columns:[ ("l", Table.Left); ("r", Table.Right) ] in
  Table.add_row t [ "ab"; "cd" ];
  Table.add_row t [ "a"; "c" ];
  let text = Table.render t in
  checkb "left aligned pads right" true (contains text "| a  |");
  checkb "right aligned pads left" true (contains text "|  c |")

let table_arity_checked () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let table_rule () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* 4 border rules (top, under header, mid, bottom) + 3 content lines. *)
  Alcotest.(check int) "line count" 8 (List.length lines)

let cell_float_formats () =
  checks "integer sheds decimals" "3" (Table.cell_float 3.0);
  checks "four decimals" "3.1416" (Table.cell_float 3.14159265);
  checks "custom decimals" "3.14" (Table.cell_float ~decimals:2 3.14159265)

let csv_escaping () =
  checks "plain" "abc" (Csv.escape "abc");
  checks "comma" "\"a,b\"" (Csv.escape "a,b");
  checks "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b");
  checks "newline" "\"a\nb\"" (Csv.escape "a\nb")

let csv_document () =
  let doc = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  checks "full document" "x,y\n1,2\n3,4\n" doc

let csv_arity_checked () =
  Alcotest.check_raises "arity" (Invalid_argument "Csv.to_string: arity mismatch")
    (fun () -> ignore (Csv.to_string ~header:[ "x" ] [ [ "1"; "2" ] ]))

let csv_round_trip_file () =
  let path = Filename.temp_file "usched" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file ~path ~header:[ "a" ] [ [ "1" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      checks "written" "a\n1\n" content)

let plot_renders_series () =
  let text =
    Plot.plot ~width:30 ~height:8 ~x_label:"k" ~y_label:"ratio"
      [
        {
          Plot.label = "guarantee";
          glyph = '*';
          points = [| (1.0, 2.0); (2.0, 1.5); (3.0, 1.2) |];
        };
      ]
  in
  checkb "has glyph" true (contains text "*");
  checkb "has legend" true (contains text "guarantee");
  checkb "has axis label" true (contains text "(k)")

let plot_empty () =
  checks "empty message" "(no data to plot)\n" (Plot.plot []);
  checks "series without points" "(no data to plot)\n"
    (Plot.plot [ { Plot.label = "x"; glyph = 'x'; points = [||] } ])

let plot_degenerate_range () =
  (* A single point must not crash on the zero-width range. *)
  let text =
    Plot.plot [ { Plot.label = "p"; glyph = 'o'; points = [| (1.0, 1.0) |] } ]
  in
  checkb "renders" true (contains text "o")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_renders_header_and_rows;
          Alcotest.test_case "alignment" `Quick table_alignment;
          Alcotest.test_case "arity" `Quick table_arity_checked;
          Alcotest.test_case "rules" `Quick table_rule;
          Alcotest.test_case "float cells" `Quick cell_float_formats;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick csv_escaping;
          Alcotest.test_case "document" `Quick csv_document;
          Alcotest.test_case "arity" `Quick csv_arity_checked;
          Alcotest.test_case "file round trip" `Quick csv_round_trip_file;
        ] );
      ( "plot",
        [
          Alcotest.test_case "series render" `Quick plot_renders_series;
          Alcotest.test_case "empty" `Quick plot_empty;
          Alcotest.test_case "degenerate range" `Quick plot_degenerate_range;
        ] );
    ]
