(* Unit and property tests for the Bitset substrate. *)

module Bitset = Usched_model.Bitset

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let empty_properties () =
  let s = Bitset.create 100 in
  checki "cardinal" 0 (Bitset.cardinal s);
  checkb "is_empty" true (Bitset.is_empty s);
  check_list "to_list" [] (Bitset.to_list s);
  checki "capacity" 100 (Bitset.capacity s)

let add_mem_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 99;
  checkb "mem 0" true (Bitset.mem s 0);
  checkb "mem 61 (word boundary)" true (Bitset.mem s 61);
  checkb "mem 62 (next word)" true (Bitset.mem s 62);
  checkb "mem 99" true (Bitset.mem s 99);
  checkb "not mem 50" false (Bitset.mem s 50);
  checki "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 61;
  checkb "removed" false (Bitset.mem s 61);
  checki "cardinal after remove" 3 (Bitset.cardinal s)

let add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 3;
  checki "no double count" 1 (Bitset.cardinal s)

let out_of_range_rejected () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: element out of range")
    (fun () -> Bitset.add s 10);
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: element out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let full_and_singleton () =
  let f = Bitset.full 70 in
  checki "full cardinal" 70 (Bitset.cardinal f);
  checkb "full mem" true (Bitset.mem f 69);
  let s = Bitset.singleton 70 42 in
  checki "singleton cardinal" 1 (Bitset.cardinal s);
  check_list "singleton member" [ 42 ] (Bitset.to_list s);
  checki "choose" 42 (Bitset.choose s)

let choose_empty_raises () =
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Bitset.choose (Bitset.create 5)))

let iter_ascending () =
  let s = Bitset.of_list 200 [ 150; 3; 77; 0; 199 ] in
  check_list "ascending order" [ 0; 3; 77; 150; 199 ] (Bitset.to_list s)

let fold_sums () =
  let s = Bitset.of_list 10 [ 1; 2; 3 ] in
  checki "fold" 6 (Bitset.fold ( + ) 0 s)

let union_inter () =
  let a = Bitset.of_list 128 [ 1; 64; 100 ] in
  let b = Bitset.of_list 128 [ 64; 100; 2 ] in
  check_list "union" [ 1; 2; 64; 100 ] (Bitset.to_list (Bitset.union a b));
  check_list "inter" [ 64; 100 ] (Bitset.to_list (Bitset.inter a b))

let capacity_mismatch_rejected () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Bitset.union a b))

let subset_equal () =
  let a = Bitset.of_list 64 [ 1; 2 ] in
  let b = Bitset.of_list 64 [ 1; 2; 3 ] in
  checkb "a subset b" true (Bitset.subset a b);
  checkb "b not subset a" false (Bitset.subset b a);
  checkb "equal self" true (Bitset.equal a a);
  checkb "not equal" false (Bitset.equal a b)

let copy_is_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  checkb "original untouched" false (Bitset.mem a 2);
  checkb "copy updated" true (Bitset.mem b 2)

let pp_renders () =
  let s = Bitset.of_list 10 [ 0; 3; 5 ] in
  Alcotest.(check string) "pp" "{0, 3, 5}" (Format.asprintf "%a" Bitset.pp s)

(* Property tests: Bitset behaves exactly like a reference set of ints. *)
let prop_matches_reference =
  QCheck.Test.make ~name:"bitset matches reference model" ~count:200
    QCheck.(pair (int_bound 300) (small_list (int_bound 500)))
    (fun (capacity, raw_ops) ->
      let capacity = capacity + 1 in
      let ops = List.map (fun x -> x mod capacity) raw_ops in
      let s = Bitset.create capacity in
      let reference = Hashtbl.create 16 in
      List.iteri
        (fun i x ->
          if i mod 3 = 2 then begin
            Bitset.remove s x;
            Hashtbl.remove reference x
          end
          else begin
            Bitset.add s x;
            Hashtbl.replace reference x ()
          end)
        ops;
      let expected =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) reference [])
      in
      Bitset.to_list s = expected
      && Bitset.cardinal s = List.length expected)

let prop_union_cardinality =
  QCheck.Test.make ~name:"inclusion-exclusion for union/inter" ~count:200
    QCheck.(pair (small_list (int_bound 99)) (small_list (int_bound 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b)
      = Bitset.cardinal a + Bitset.cardinal b)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick empty_properties;
          Alcotest.test_case "add/mem/remove" `Quick add_mem_remove;
          Alcotest.test_case "add idempotent" `Quick add_idempotent;
          Alcotest.test_case "range checks" `Quick out_of_range_rejected;
          Alcotest.test_case "full and singleton" `Quick full_and_singleton;
          Alcotest.test_case "choose empty" `Quick choose_empty_raises;
          Alcotest.test_case "iteration order" `Quick iter_ascending;
          Alcotest.test_case "fold" `Quick fold_sums;
          Alcotest.test_case "union/inter" `Quick union_inter;
          Alcotest.test_case "capacity mismatch" `Quick capacity_mismatch_rejected;
          Alcotest.test_case "subset/equal" `Quick subset_equal;
          Alcotest.test_case "copy independence" `Quick copy_is_independent;
          Alcotest.test_case "pretty printing" `Quick pp_renders;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_reference; prop_union_cardinality ] );
    ]
