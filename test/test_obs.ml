(* Observability layer: metrics registry semantics, engine instrumentation
   against hand-computed fault scenarios, the metrics-on/off golden
   equivalence, JSON/JSONL writer round-trips, and mkdir_p. *)

module Metrics = Usched_obs.Metrics
module Fs = Usched_obs.Fs
module Sink = Usched_obs.Trace
module Json = Usched_report.Json
module Engine = Usched_desim.Engine
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Rng = Usched_prng.Rng
module Quantile = Usched_stats.Quantile

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------- metrics registry ------------------------ *)

let metrics_basics () =
  let t = Metrics.create () in
  let c = Metrics.counter t "c" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter accumulates" 5 (Metrics.counter_value c);
  checki "get-or-create shares state" 5
    (Metrics.counter_value (Metrics.counter t "c"));
  let g = Metrics.gauge t "g" in
  Metrics.set g 2.5;
  Metrics.record_max g 1.0;
  close "max keeps the larger" 2.5 (Metrics.gauge_value g);
  Metrics.record_max g 7.0;
  close "max advances" 7.0 (Metrics.gauge_value g);
  let tm = Metrics.timer t "t" in
  Metrics.add_span tm 0.25;
  Metrics.add_span tm 0.75;
  let h = Metrics.histogram t "h" in
  List.iter (Metrics.observe h) [ 3.0; 1.0; 2.0 ];
  let snap = Metrics.snapshot t in
  checki "four instruments" 4 (List.length snap);
  checkb "sorted by name" true
    (List.map fst snap = List.sort String.compare (List.map fst snap));
  (match Metrics.find snap "t" with
  | Some (Metrics.Timer { total_s; spans }) ->
      close "timer total" 1.0 total_s;
      checki "timer spans" 2 spans
  | _ -> Alcotest.fail "timer missing");
  match Metrics.find snap "h" with
  | Some (Metrics.Histogram { count; sum; min; max }) ->
      checki "hist count" 3 count;
      close "hist sum" 6.0 sum;
      close "hist min" 1.0 min;
      close "hist max" 3.0 max
  | _ -> Alcotest.fail "histogram missing"

let metrics_disabled () =
  let t = Metrics.disabled in
  checkb "disabled" true (not (Metrics.is_enabled t));
  let c = Metrics.counter t "c" in
  Metrics.incr c;
  Metrics.add c 10;
  checki "no-op counter" 0 (Metrics.counter_value c);
  let g = Metrics.gauge t "g" in
  Metrics.set g 9.0;
  close "no-op gauge" 0.0 (Metrics.gauge_value g);
  let ran = ref false in
  let x = Metrics.time (Metrics.timer t "t") (fun () -> ran := true; 42) in
  checki "timer still runs the thunk" 42 x;
  checkb "thunk ran" true !ran;
  Metrics.observe (Metrics.histogram t "h") 1.0;
  checkb "empty snapshot" true (Metrics.snapshot t = [])

let metrics_kind_mismatch () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "x");
  checkb "re-registering as gauge raises" true
    (try
       ignore (Metrics.gauge t "x");
       false
     with Invalid_argument _ -> true)

(* --------------------- engine instrumentation ---------------------- *)

let submission_order n = Array.init n (fun j -> j)

let get_counter snap name =
  match Metrics.find snap name with
  | Some (Metrics.Counter n) -> n
  | _ -> Alcotest.failf "counter %s missing" name

let get_gauge snap name =
  match Metrics.find snap name with
  | Some (Metrics.Gauge g) -> g
  | _ -> Alcotest.failf "gauge %s missing" name

(* The crash/re-dispatch scenario of test_faults, now checked through the
   metrics: two tasks of 4 on two machines, full replication, machine 0
   crashes at 2. Three copies start (one is the re-dispatch of the killed
   task), one kill, two units wasted, makespan 8. *)
let engine_crash_metrics () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0; 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.init 2 (fun _ -> Bitset.full 2) in
  let metrics = Metrics.create () in
  let outcome =
    Engine.run_faulty ~metrics instance realization
      ~faults:
        (Trace.of_events ~m:2
           [ { Fault.machine = 0; time = 2.0; kind = Fault.Crash } ])
      ~placement ~order:(submission_order 2)
  in
  let snap = outcome.Engine.metrics in
  checki "dispatches" 3 (get_counter snap "engine.dispatches");
  checki "redispatches" 1 (get_counter snap "engine.redispatches");
  checki "kills" 1 (get_counter snap "engine.kills");
  checki "crashes" 1 (get_counter snap "engine.crashes");
  checki "no speculation" 0 (get_counter snap "engine.spec_starts");
  checki "completed" 2 (get_counter snap "engine.completed");
  checki "stranded" 0 (get_counter snap "engine.stranded");
  close "wasted gauge mirrors outcome" outcome.Engine.wasted
    (get_gauge snap "engine.wasted_work");
  close "wasted is the two killed units" 2.0
    (get_gauge snap "engine.wasted_work");
  close "makespan gauge" 8.0 (get_gauge snap "engine.makespan");
  checkb "events were counted" true (get_counter snap "engine.events" > 0);
  (* Idle: m0 processed 2 units before dying (idle 6 of makespan 8), m1
     was busy 0..8 (idle 0). *)
  match Metrics.find snap "engine.machine_idle" with
  | Some (Metrics.Histogram { count; sum; min; max }) ->
      checki "one observation per machine" 2 count;
      close "total idle" 6.0 sum;
      close "busiest machine idle" 0.0 min;
      close "crashed machine idle tail" 6.0 max
  | _ -> Alcotest.fail "idle histogram missing"

(* Speculation metrics: one task (est 2, actual 8), machine 0 a
   congenital straggler; the beta=2 backup starts at 4 on machine 1 and
   wins at 12; the primary is cancelled (12 units wasted). *)
let engine_speculation_metrics () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 4.0) [| 2.0 |]
  in
  let realization = Realization.of_actuals instance [| 8.0 |] in
  let placement = [| Bitset.full 2 |] in
  let faults =
    Trace.of_events ~m:2
      [ { Fault.machine = 0; time = 0.0; kind = Fault.Slowdown 0.25 } ]
  in
  let metrics = Metrics.create () in
  let outcome =
    Engine.run_faulty ~speculation:2.0 ~metrics instance realization ~faults
      ~placement ~order:(submission_order 1)
  in
  let snap = outcome.Engine.metrics in
  checki "primary + backup" 2 (get_counter snap "engine.dispatches");
  checki "one speculative start" 1 (get_counter snap "engine.spec_starts");
  checki "loser cancelled" 1 (get_counter snap "engine.spec_cancelled");
  checki "nothing redispatched" 0 (get_counter snap "engine.redispatches");
  checki "slowdown seen" 1 (get_counter snap "engine.slowdowns");
  checki "no kills" 0 (get_counter snap "engine.kills");
  close "loser's wall-clock wasted" 12.0 (get_gauge snap "engine.wasted_work");
  close "makespan is the winner's" 12.0 (get_gauge snap "engine.makespan")

let engine_plain_run_metrics () =
  (* Two machines, three unit tasks fully replicated, submission order:
     m0 runs t0 then t2 (busy 2), m1 runs t1 (busy 1, idle 1). *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 1.0; 1.0; 1.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.init 3 (fun _ -> Bitset.full 2) in
  let metrics = Metrics.create () in
  let schedule =
    Engine.run ~metrics instance realization ~placement
      ~order:(submission_order 3)
  in
  close "makespan" 2.0 (Schedule.makespan schedule);
  let snap = Metrics.snapshot metrics in
  checki "three dispatches" 3 (get_counter snap "engine.dispatches");
  close "makespan gauge" 2.0 (get_gauge snap "engine.makespan");
  match Metrics.find snap "engine.machine_idle" with
  | Some (Metrics.Histogram { count; sum; _ }) ->
      checki "per machine" 2 count;
      close "one idle unit" 1.0 sum
  | _ -> Alcotest.fail "idle histogram missing"

(* Golden: metrics on vs off never changes a single bit of the outputs. *)
let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario_print (n, m, k, p, seed) =
  Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j -> Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults = Trace.random_crashes rng ~m ~p ~horizon in
  (instance, realization, placement, order, faults)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let prop_metrics_golden =
  QCheck.Test.make ~name:"outputs are bit-for-bit equal with metrics on/off"
    ~count:300 scenario (fun s ->
      let instance, realization, placement, order, faults = build s in
      let plain =
        Engine.run_faulty ~speculation:1.5 instance realization ~faults
          ~placement ~order
      in
      let observed =
        Engine.run_faulty ~speculation:1.5 ~metrics:(Metrics.create ())
          instance realization ~faults ~placement ~order
      in
      plain.Engine.makespan = observed.Engine.makespan
      && plain.Engine.wasted = observed.Engine.wasted
      && plain.Engine.stranded = observed.Engine.stranded
      && plain.Engine.completed = observed.Engine.completed
      && Array.for_all2
           (fun x y ->
             match (x, y) with
             | Engine.Stranded, Engine.Stranded -> true
             | Engine.Finished e, Engine.Finished f -> entries_equal e f
             | _ -> false)
           plain.Engine.fates observed.Engine.fates)

let prop_plain_run_metrics_golden =
  QCheck.Test.make ~name:"run is bit-for-bit equal with metrics on/off"
    ~count:300 scenario (fun s ->
      let instance, realization, placement, order, _ = build s in
      let a = Engine.run instance realization ~placement ~order in
      let b =
        Engine.run ~metrics:(Metrics.create ()) instance realization ~placement
          ~order
      in
      Schedule.n a = Schedule.n b
      && List.for_all
           (fun j -> entries_equal (Schedule.entry a j) (Schedule.entry b j))
           (List.init (Schedule.n a) Fun.id))

(* --------------------------- JSON writer --------------------------- *)

let json_serialization () =
  checks "escaping" {|{"s":"a\"b\\c\nd\te\u0001"}|}
    (Json.to_string (Json.Obj [ ("s", Json.String "a\"b\\c\nd\te\001") ]));
  checks "nested"
    {|{"l":[1,true,null,"x"],"o":{"k":2.5}}|}
    (Json.to_string
       (Json.Obj
          [
            ("l", Json.List [ Json.Int 1; Json.Bool true; Json.Null; Json.String "x" ]);
            ("o", Json.Obj [ ("k", Json.Float 2.5) ]);
          ]));
  checks "non-finite floats become null" {|[null,null,null]|}
    (Json.to_string
       (Json.List [ Json.float nan; Json.float infinity; Json.float neg_infinity ]));
  checks "integral float stays a number" "1" (Json.to_string (Json.Float 1.0));
  checkb "float repr round-trips" true
    (let f = 0.1 +. 0.2 in
     float_of_string (Json.to_string (Json.Float f)) = f)

let json_round_trip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int (-42));
        ("b", Json.Float 3.141592653589793);
        ("c", Json.String "quote\" slash\\ nl\n tab\t unicode \xc3\xa9");
        ("d", Json.List [ Json.Bool false; Json.Null; Json.Obj [] ]);
        ("e", Json.Obj [ ("nested", Json.List [ Json.Int 0 ]) ]);
      ]
  in
  checkb "parse (print v) = v" true (Json.of_string_exn (Json.to_string v) = v);
  checkb "unicode escape" true
    (Json.of_string_exn {|"Aé"|} = Json.String "A\xc3\xa9");
  checkb "surrogate pair" true
    (Json.of_string_exn {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  checkb "exponent number" true (Json.of_string_exn "1e3" = Json.Float 1000.0);
  checkb "integer stays int" true (Json.of_string_exn "17" = Json.Int 17);
  checkb "member lookup" true
    (Json.member "a" (Json.of_string_exn {|{"a":1}|}) = Some (Json.Int 1));
  List.iter
    (fun bad ->
      checkb (Printf.sprintf "rejects %S" bad) true
        (match Json.of_string bad with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let temp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "usched_obs_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fs.mkdir_p dir;
  dir

let jsonl_sink () =
  let dir = temp_dir () in
  (* Parent directories spring into existence. *)
  let path = Filename.concat dir "a/b/trace.jsonl" in
  let records =
    [
      Json.Obj [ ("type", Json.String "meta"); ("seed", Json.Int 1) ];
      Json.Obj [ ("type", Json.String "event"); ("t", Json.Float 0.5) ];
      Json.Obj [ ("type", Json.String "outcome") ];
    ]
  in
  Sink.with_file ~path (fun sink -> List.iter (Sink.emit sink) records);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  checki "one line per record" (List.length records) (List.length lines);
  checkb "each line parses back to its record" true
    (List.for_all2 (fun line r -> Json.of_string_exn line = r) lines records)

let mkdir_p_cases () =
  let dir = temp_dir () in
  let nested = Filename.concat dir "x/y/z" in
  Fs.mkdir_p nested;
  checkb "nested created" true (Sys.is_directory nested);
  Fs.mkdir_p nested;
  checkb "idempotent" true (Sys.is_directory nested);
  let file = Filename.concat dir "plain" in
  let oc = open_out file in
  close_out oc;
  checkb "file in the way fails" true
    (try
       Fs.mkdir_p (Filename.concat file "sub");
       false
     with Failure _ | Unix.Unix_error _ -> true)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let atomic_write_cases () =
  let dir = temp_dir () in
  let path = Filename.concat dir "sub/report.json" in
  Fs.write_atomic ~path "first";
  checkb "content written" true (read_file path = "first");
  checkb "no temp file left" false (Sys.file_exists (Fs.temp_path path));
  Fs.write_atomic ~path "second";
  checkb "overwrite replaces" true (read_file path = "second")

exception Boom

let atomic_write_failure_keeps_old_content () =
  let dir = temp_dir () in
  let path = Filename.concat dir "out.csv" in
  Fs.write_atomic ~path "precious";
  checkb "writer exception propagates" true
    (try
       (Fs.with_atomic_oc ~path (fun oc ->
            output_string oc "torn torn torn";
            raise Boom)
         : unit);
       false
     with Boom -> true);
  checkb "old content survives a failed rewrite" true
    (read_file path = "precious");
  checkb "failed writer leaves no temp file" false
    (Sys.file_exists (Fs.temp_path path))

let sink_discard_on_exception () =
  let dir = temp_dir () in
  let path = Filename.concat dir "trace.jsonl" in
  Sink.with_file ~path (fun s -> Sink.emit s (Json.Obj []));
  checkb "baseline trace published" true (Sys.file_exists path);
  let before = read_file path in
  checkb "exception propagates" true
    (try
       (Sink.with_file ~path (fun s ->
            Sink.emit s (Json.Obj [ ("half", Json.Int 1) ]);
            raise Boom)
         : unit);
       false
     with Boom -> true);
  checkb "old trace untouched" true (read_file path = before);
  checkb "no temp file left" false (Sys.file_exists (Fs.temp_path path));
  (* Publication only happens at close: mid-stream the target is the old
     file (or absent), never a prefix of the new one. *)
  let fresh = Filename.concat dir "fresh.jsonl" in
  let sink = Sink.create ~path:fresh in
  Sink.emit sink (Json.Obj []);
  checkb "target absent until close" false (Sys.file_exists fresh);
  Sink.close sink;
  checkb "published at close" true (Sys.file_exists fresh);
  Sink.close sink (* idempotent *)

(* --------------------------- quantiles ----------------------------- *)

let quantile_rejects_nan () =
  checkb "NaN input raises" true
    (try
       ignore (Quantile.median [| 1.0; nan; 2.0 |]);
       false
     with Invalid_argument _ -> true)

let prop_quantiles_sound =
  QCheck.Test.make
    ~name:"quantiles are NaN-free, in-range, and order-preserving" ~count:500
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 40) (float_range (-1000.0) 1000.0))
        (array_of_size Gen.(int_range 1 8) (float_range 0.0 1.0)))
    (fun (sample, qs) ->
      Array.sort Float.compare qs;
      let res = Quantile.quantiles sample ~qs in
      let lo = Array.fold_left Float.min infinity sample in
      let hi = Array.fold_left Float.max neg_infinity sample in
      let in_range = Array.for_all (fun v -> v >= lo && v <= hi) res in
      let nan_free = Array.for_all (fun v -> not (Float.is_nan v)) res in
      let monotone = ref true in
      for i = 0 to Array.length res - 2 do
        if res.(i) > res.(i + 1) then monotone := false
      done;
      in_range && nan_free && !monotone)

let () =
  Random.self_init ();
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick metrics_basics;
          Alcotest.test_case "disabled registry" `Quick metrics_disabled;
          Alcotest.test_case "kind mismatch" `Quick metrics_kind_mismatch;
        ] );
      ( "engine instrumentation",
        [
          Alcotest.test_case "crash / re-dispatch counts" `Quick
            engine_crash_metrics;
          Alcotest.test_case "speculation counts" `Quick
            engine_speculation_metrics;
          Alcotest.test_case "plain run" `Quick engine_plain_run_metrics;
          qtest prop_metrics_golden;
          qtest prop_plain_run_metrics_golden;
        ] );
      ( "json",
        [
          Alcotest.test_case "serialization" `Quick json_serialization;
          Alcotest.test_case "round trip" `Quick json_round_trip;
          Alcotest.test_case "jsonl sink" `Quick jsonl_sink;
        ] );
      ( "fs",
        [
          Alcotest.test_case "mkdir_p" `Quick mkdir_p_cases;
          Alcotest.test_case "atomic writes" `Quick atomic_write_cases;
          Alcotest.test_case "failed write keeps old content" `Quick
            atomic_write_failure_keeps_old_content;
          Alcotest.test_case "sink discards on exception" `Quick
            sink_discard_on_exception;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "rejects NaN" `Quick quantile_rejects_nan;
          qtest prop_quantiles_sound;
        ] );
    ]
