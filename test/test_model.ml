(* Unit tests for tasks, uncertainty, instances and realizations. *)

module Task = Usched_model.Task
module Uncertainty = Usched_model.Uncertainty
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let task_validation () =
  Alcotest.check_raises "zero estimate"
    (Invalid_argument "Task.make: estimate must be > 0") (fun () ->
      ignore (Task.make ~id:0 ~est:0.0 ()));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Task.make: negative size") (fun () ->
      ignore (Task.make ~id:0 ~est:1.0 ~size:(-1.0) ()));
  Alcotest.check_raises "negative id" (Invalid_argument "Task.make: negative id")
    (fun () -> ignore (Task.make ~id:(-1) ~est:1.0 ()))

let task_default_size () =
  close "default size 1" 1.0 (Task.size (Task.make ~id:0 ~est:2.0 ()))

let task_lpt_ordering () =
  let a = Task.make ~id:0 ~est:3.0 () in
  let b = Task.make ~id:1 ~est:5.0 () in
  let c = Task.make ~id:2 ~est:3.0 () in
  checkb "bigger first" true (Task.compare_est_desc b a < 0);
  checkb "tie by id" true (Task.compare_est_desc a c < 0)

let alpha_validation () =
  Alcotest.check_raises "alpha below 1"
    (Invalid_argument "Uncertainty.alpha: factor must be finite and >= 1")
    (fun () -> ignore (Uncertainty.alpha 0.9));
  Alcotest.check_raises "alpha nan"
    (Invalid_argument "Uncertainty.alpha: factor must be finite and >= 1")
    (fun () -> ignore (Uncertainty.alpha Float.nan));
  close "exact alpha" 1.0 (Uncertainty.to_float Uncertainty.alpha_exact)

let alpha_interval () =
  let a = Uncertainty.alpha 2.0 in
  let lo, hi = Uncertainty.interval a ~est:8.0 in
  close "lower" 4.0 lo;
  close "upper" 16.0 hi

let alpha_admissible () =
  let a = Uncertainty.alpha 2.0 in
  checkb "inside" true (Uncertainty.admissible a ~est:8.0 ~actual:8.0);
  checkb "at lower edge" true (Uncertainty.admissible a ~est:8.0 ~actual:4.0);
  checkb "at upper edge" true (Uncertainty.admissible a ~est:8.0 ~actual:16.0);
  checkb "below" false (Uncertainty.admissible a ~est:8.0 ~actual:3.9);
  checkb "above" false (Uncertainty.admissible a ~est:8.0 ~actual:16.1)

let alpha_clamp () =
  let a = Uncertainty.alpha 2.0 in
  close "clamps down" 16.0 (Uncertainty.clamp a ~est:8.0 100.0);
  close "clamps up" 4.0 (Uncertainty.clamp a ~est:8.0 0.1);
  close "identity inside" 10.0 (Uncertainty.clamp a ~est:8.0 10.0)

let instance_construction () =
  let inst =
    Instance.of_ests ~m:3 ~alpha:(Uncertainty.alpha 1.5) [| 3.0; 1.0; 2.0 |]
  in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check int) "m" 3 (Instance.m inst);
  close "total" 6.0 (Instance.total_est inst);
  close "max" 3.0 (Instance.max_est inst);
  close "est of task 2" 2.0 (Instance.est inst 2)

let instance_id_check () =
  let tasks = [| Task.make ~id:1 ~est:1.0 () |] in
  Alcotest.check_raises "bad ids"
    (Invalid_argument "Instance.make: task ids must be 0..n-1 in order")
    (fun () -> ignore (Instance.make ~m:1 ~alpha:Uncertainty.alpha_exact tasks))

let instance_m_check () =
  Alcotest.check_raises "m = 0"
    (Invalid_argument "Instance.make: need at least one machine") (fun () ->
      ignore (Instance.make ~m:0 ~alpha:Uncertainty.alpha_exact [||]))

let instance_lpt_order () =
  let inst =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 1.0; 3.0; 2.0; 3.0 |]
  in
  Alcotest.(check (array int)) "order" [| 1; 3; 2; 0 |] (Instance.lpt_order inst)

let instance_sizes () =
  let inst =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact
      ~sizes:[| 5.0; 6.0 |] [| 1.0; 2.0 |]
  in
  close "total size" 11.0 (Instance.total_size inst);
  close "max size" 6.0 (Instance.max_size inst)

let instance_sizes_length_check () =
  Alcotest.check_raises "sizes mismatch"
    (Invalid_argument "Instance.of_ests: sizes length mismatch") (fun () ->
      ignore
        (Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact ~sizes:[| 1.0 |]
           [| 1.0; 2.0 |]))

let realization_validation () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0) [| 4.0; 4.0 |] in
  (* 1.0 < 4.0/2.0, outside the alpha interval. *)
  checkb "of_actuals rejects" true
    (try
       ignore (Realization.of_actuals inst [| 1.0; 4.0 |]);
       false
     with Invalid_argument _ -> true);
  let r = Realization.of_actuals inst [| 2.0; 8.0 |] in
  close "actual 0" 2.0 (Realization.actual r 0);
  close "total" 10.0 (Realization.total r);
  close "max" 8.0 (Realization.max_actual r)

let realization_of_factors () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0) [| 4.0; 6.0 |] in
  let r = Realization.of_factors inst [| 2.0; 0.5 |] in
  close "inflated" 8.0 (Realization.actual r 0);
  close "deflated" 3.0 (Realization.actual r 1)

let realization_exact () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 3.0) [| 4.0; 6.0 |] in
  let r = Realization.exact inst in
  Alcotest.(check (array (float 1e-12))) "actual = est" [| 4.0; 6.0 |]
    (Realization.actuals r)

let realization_random_models_admissible () =
  let inst =
    Instance.of_ests ~m:4 ~alpha:(Uncertainty.alpha 1.7)
      (Array.init 50 (fun i -> 1.0 +. float_of_int i))
  in
  let rng = Rng.create ~seed:3 () in
  (* of_actuals validates internally; building each model 20 times must
     never raise. *)
  for _ = 1 to 20 do
    ignore (Realization.uniform_factor inst rng);
    ignore (Realization.log_uniform_factor inst rng);
    ignore (Realization.extremes ~p_high:0.5 inst rng)
  done;
  checkb "all admissible" true true

let realization_extremes_two_point () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0) [| 4.0; 4.0 |] in
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 50 do
    let r = Realization.extremes ~p_high:0.5 inst rng in
    Array.iter
      (fun actual ->
        checkb "extreme value" true
          (Float.abs (actual -. 8.0) < 1e-9 || Float.abs (actual -. 2.0) < 1e-9))
      (Realization.actuals r)
  done

let realization_biased () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0) [| 4.0; 6.0 |] in
  let r = Realization.biased ~factor:1.5 inst in
  Alcotest.(check (array (float 1e-12))) "uniformly scaled" [| 6.0; 9.0 |]
    (Realization.actuals r);
  checkb "factor outside interval rejected" true
    (try
       ignore (Realization.biased ~factor:3.0 inst);
       false
     with Invalid_argument _ -> true)

let realization_clustered () =
  let inst =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 2.0) (Array.make 8 4.0)
  in
  let rng = Rng.create ~seed:9 () in
  let r = Realization.clustered ~clusters:2 inst in
  let r = r rng in
  (* Tasks 0,2,4,6 share one factor; 1,3,5,7 the other. *)
  List.iter
    (fun j ->
      close "even cluster" (Realization.actual r 0) (Realization.actual r j))
    [ 2; 4; 6 ];
  List.iter
    (fun j ->
      close "odd cluster" (Realization.actual r 1) (Realization.actual r j))
    [ 3; 5; 7 ];
  checkb "clusters < 1 rejected" true
    (try
       ignore (Realization.clustered ~clusters:0 inst rng);
       false
     with Invalid_argument _ -> true)

let realization_alpha_one_is_exact () =
  let inst = Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0; 6.0 |] in
  let rng = Rng.create ~seed:5 () in
  let r = Realization.log_uniform_factor inst rng in
  Alcotest.(check (array (float 1e-12))) "no wiggle room" [| 4.0; 6.0 |]
    (Realization.actuals r)

(* ------------------------- failure profiles ------------------------ *)

module Failure = Usched_model.Failure
module Bitset = Usched_model.Bitset

let failure_validation () =
  checkb "valid profile accepted" true
    (Failure.m (Failure.make [| 0.0; 0.5; 1.0 |]) = 3);
  let rejected p =
    match Failure.make p with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "empty rejected" true (rejected [||]);
  checkb "negative rejected" true (rejected [| 0.1; -0.1 |]);
  checkb "above one rejected" true (rejected [| 1.1 |]);
  checkb "nan rejected" true (rejected [| Float.nan |])

let failure_loss_probabilities () =
  let f = Failure.make [| 0.1; 0.5; 0.0; 1.0 |] in
  close "single machine" 0.1 (Failure.prob_all_lost f (Bitset.singleton 4 0));
  close "independent product" 0.05
    (Failure.prob_all_lost f (Bitset.of_list 4 [ 0; 1 ]));
  close "a never-failing member saves the set" 0.0
    (Failure.prob_all_lost f (Bitset.of_list 4 [ 0; 2 ]));
  close "a certain-failure member changes nothing" 0.1
    (Failure.prob_all_lost f (Bitset.of_list 4 [ 0; 3 ]));
  close "empty set protects nothing" 1.0
    (Failure.prob_all_lost f (Bitset.create 4));
  close "uniform accessor" 0.05 (Failure.p (Failure.uniform ~m:3 ~p:0.05) 2)

let failure_string_round_trip () =
  let f = Failure.make [| 0.1; 1.0 /. 3.0; Float.epsilon |] in
  (match Failure.of_string (Failure.to_string f) with
  | Ok back -> checkb "bit-exact round trip" true (Failure.equal back f)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  let rejected s =
    match Failure.of_string s with Error _ -> true | Ok _ -> false
  in
  checkb "junk rejected" true (rejected "0.1,zebra");
  checkb "out-of-range rejected" true (rejected "0.1,1.5");
  checkb "nan rejected" true (rejected "nan");
  checkb "empty rejected" true (rejected "")

let instance_failure_profile () =
  let inst = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 1.5) [| 1.0; 2.0 |] in
  checkb "no profile by default" true (Instance.failure inst = None);
  close "default profile is the documented uniform" Failure.default_p
    (Failure.p (Instance.failure_or_default inst) 1);
  let f = Failure.make [| 0.2; 0.3 |] in
  let with_f = Instance.with_failure inst (Some f) in
  (match Instance.failure with_f with
  | Some g -> checkb "attached profile returned" true (Failure.equal g f)
  | None -> Alcotest.fail "profile lost");
  checkb "original instance untouched" true (Instance.failure inst = None);
  checkb "machine-count mismatch rejected" true
    (match Instance.with_failure inst (Some (Failure.uniform ~m:3 ~p:0.1)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "model"
    [
      ( "task",
        [
          Alcotest.test_case "validation" `Quick task_validation;
          Alcotest.test_case "default size" `Quick task_default_size;
          Alcotest.test_case "LPT ordering" `Quick task_lpt_ordering;
        ] );
      ( "uncertainty",
        [
          Alcotest.test_case "alpha validation" `Quick alpha_validation;
          Alcotest.test_case "interval" `Quick alpha_interval;
          Alcotest.test_case "admissibility" `Quick alpha_admissible;
          Alcotest.test_case "clamp" `Quick alpha_clamp;
        ] );
      ( "instance",
        [
          Alcotest.test_case "construction" `Quick instance_construction;
          Alcotest.test_case "id validation" `Quick instance_id_check;
          Alcotest.test_case "machine validation" `Quick instance_m_check;
          Alcotest.test_case "LPT order" `Quick instance_lpt_order;
          Alcotest.test_case "sizes" `Quick instance_sizes;
          Alcotest.test_case "sizes length" `Quick instance_sizes_length_check;
        ] );
      ( "failure",
        [
          Alcotest.test_case "validation" `Quick failure_validation;
          Alcotest.test_case "loss probabilities" `Quick
            failure_loss_probabilities;
          Alcotest.test_case "string round trip" `Quick
            failure_string_round_trip;
          Alcotest.test_case "instance profile plumbing" `Quick
            instance_failure_profile;
        ] );
      ( "realization",
        [
          Alcotest.test_case "validation" `Quick realization_validation;
          Alcotest.test_case "of_factors" `Quick realization_of_factors;
          Alcotest.test_case "exact" `Quick realization_exact;
          Alcotest.test_case "random models admissible" `Quick
            realization_random_models_admissible;
          Alcotest.test_case "extremes are two-point" `Quick
            realization_extremes_two_point;
          Alcotest.test_case "biased" `Quick realization_biased;
          Alcotest.test_case "clustered" `Quick realization_clustered;
          Alcotest.test_case "alpha=1 degenerates" `Quick
            realization_alpha_one_is_exact;
        ] );
    ]
