(* Tests for timelines and utilization statistics. *)

module Timeline = Usched_desim.Timeline
module Schedule = Usched_desim.Schedule
module Engine = Usched_desim.Engine
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let entry machine start finish = { Schedule.machine; start; finish }

let stats_basic () =
  let s =
    Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 0 3.0 5.0; entry 1 0.0 1.0 |]
  in
  let stats = Timeline.machine_stats s in
  let m0 = stats.(0) and m1 = stats.(1) in
  close "m0 busy" 4.0 m0.Timeline.busy;
  close "m0 finish" 5.0 m0.Timeline.finish;
  Alcotest.(check int) "m0 tasks" 2 m0.Timeline.tasks;
  close "m0 idle gap" 1.0 m0.Timeline.idle_before_finish;
  close "m1 busy" 1.0 m1.Timeline.busy;
  Alcotest.(check int) "m1 tasks" 1 m1.Timeline.tasks

let utilization_perfect () =
  let s = Schedule.make ~m:2 [| entry 0 0.0 3.0; entry 1 0.0 3.0 |] in
  close "fully busy" 1.0 (Timeline.utilization s)

let utilization_half () =
  (* One machine busy 4, the other idle: 4 / (2*4) = 0.5. *)
  let s = Schedule.make ~m:2 [| entry 0 0.0 4.0 |] in
  close "half" 0.5 (Timeline.utilization s)

let utilization_empty () =
  close "empty schedule" 0.0 (Timeline.utilization (Schedule.make ~m:3 [||]))

let engine_schedules_have_no_gaps () =
  (* The engine never leaves a machine idle while it has eligible
     work, so idle_before_finish must be 0 everywhere. *)
  let instance =
    Instance.of_ests ~m:3 ~alpha:Uncertainty.alpha_exact
      [| 4.0; 3.0; 3.0; 2.0; 2.0; 1.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.init 6 (fun _ -> Bitset.full 3) in
  let s =
    Engine.run instance realization ~placement
      ~order:(Array.init 6 (fun j -> j))
  in
  Array.iter
    (fun stat -> close "no internal idleness" 0.0 stat.Timeline.idle_before_finish)
    (Timeline.machine_stats s)

let render_events_format () =
  let events =
    [
      Engine.Started { time = 0.0; machine = 1; task = 4 };
      Engine.Completed { time = 2.5; machine = 1; task = 4 };
    ]
  in
  let text = Timeline.render_events events in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "start line" true (contains "start    task 4");
  checkb "complete line" true (contains "complete task 4");
  checkb "machine" true (contains "m1")

let render_stats_mentions_utilization () =
  let s = Schedule.make ~m:1 [| entry 0 0.0 1.0 |] in
  let text = Timeline.render_stats s in
  checkb "has utilization line" true
    (String.length text > 0
    &&
    let needle = "utilization" in
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0)

let () =
  Alcotest.run "timeline"
    [
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick stats_basic;
          Alcotest.test_case "full utilization" `Quick utilization_perfect;
          Alcotest.test_case "half utilization" `Quick utilization_half;
          Alcotest.test_case "empty" `Quick utilization_empty;
          Alcotest.test_case "engine leaves no gaps" `Quick
            engine_schedules_have_no_gaps;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "events" `Quick render_events_format;
          Alcotest.test_case "stats table" `Quick render_stats_mentions_utilization;
        ] );
    ]
