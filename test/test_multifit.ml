(* Unit and property tests for MULTIFIT. *)

module Multifit = Usched_core.Multifit
module Assign = Usched_core.Assign
module Opt = Usched_core.Opt

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let ffd_feasibility () =
  checkb "fits exactly" true
    (Multifit.ffd_fits ~capacity:6.0 ~m:2 [| 3.0; 3.0; 2.0; 2.0; 2.0 |]);
  checkb "does not fit below optimum" false
    (Multifit.ffd_fits ~capacity:5.9 ~m:2 [| 3.0; 3.0; 2.0; 2.0; 2.0 |])

let ffd_single_bin () =
  checkb "single bin is a sum check" true
    (Multifit.ffd_fits ~capacity:10.0 ~m:1 [| 4.0; 3.0; 3.0 |]);
  checkb "overflow" false (Multifit.ffd_fits ~capacity:9.9 ~m:1 [| 4.0; 3.0; 3.0 |])

let beats_lpt_on_classic_instance () =
  (* On the (3,3,2,2,2) instance LPT yields 7; MULTIFIT finds 6. *)
  let p = [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  close "optimal here" 6.0 (Multifit.makespan ~m:2 p);
  close "LPT is worse" 7.0 (Assign.makespan (Assign.lpt ~m:2 ~weights:p))

let empty_and_trivial () =
  close "no tasks" 0.0 (Multifit.makespan ~m:3 [||]);
  close "one task" 5.0 (Multifit.makespan ~m:3 [| 5.0 |])

let assignment_loads_consistent () =
  let p = [| 7.0; 5.0; 4.0; 3.0; 3.0; 2.0 |] in
  let r = Multifit.schedule ~m:2 p in
  let recomputed = Array.make 2 0.0 in
  Array.iteri (fun j i -> recomputed.(i) <- recomputed.(i) +. p.(j)) r.Assign.assignment;
  Alcotest.(check (array (float 1e-9))) "loads match" recomputed r.Assign.loads

let invalid_inputs () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Multifit: m must be >= 1")
    (fun () -> ignore (Multifit.schedule ~m:0 [| 1.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Multifit: negative time")
    (fun () -> ignore (Multifit.schedule ~m:1 [| -1.0 |]))

let prop_within_coffman_bound =
  QCheck.Test.make ~name:"within 13/11 + 2^-k of the exact optimum" ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 1 13) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let opt = Opt.makespan ~m p in
      let bound = Usched_core.Guarantees.multifit ~iterations:20 in
      Multifit.makespan ~iterations:20 ~m p <= (bound *. opt) +. 1e-9)

let prop_never_worse_than_lpt_start =
  QCheck.Test.make ~name:"never worse than the LPT incumbent" ~count:200
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 0 20) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      Multifit.makespan ~m p
      <= Assign.makespan (Assign.lpt ~m ~weights:p) +. 1e-9)

let () =
  Alcotest.run "multifit"
    [
      ( "unit",
        [
          Alcotest.test_case "FFD feasibility" `Quick ffd_feasibility;
          Alcotest.test_case "FFD single bin" `Quick ffd_single_bin;
          Alcotest.test_case "beats LPT" `Quick beats_lpt_on_classic_instance;
          Alcotest.test_case "trivial" `Quick empty_and_trivial;
          Alcotest.test_case "loads consistent" `Quick assignment_loads_consistent;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_within_coffman_bound; prop_never_worse_than_lpt_start ] );
    ]
