(* Dispatch layer: spec parsing, the golden equivalence of the default
   policy with the pre-refactor engine (bit for bit, healthy and faulty,
   metrics and recovery on/off), the re-dispatch determinism contract,
   hand-built scenarios for each alternative policy, and the
   policy/fault reachability property (under full replication every
   work-conserving policy completes the same task set). *)

module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let submission_order n = Array.init n (fun j -> j)
let entries s = Array.init (Schedule.n s) (Schedule.entry s)

let finished_entry outcome j =
  match outcome.Engine.fates.(j) with
  | Engine.Finished e -> e
  | Engine.Stranded -> Alcotest.failf "task %d stranded" j

let outage ~machine ~time ~until =
  { Fault.machine; time; kind = Fault.Outage until }

(* --------------------------- spec parsing --------------------------- *)

let spec_names () =
  checks "default name" "list-priority" (Dispatch.name Dispatch.default);
  List.iter
    (fun spec ->
      match Dispatch.spec_of_string (Dispatch.name spec) with
      | Ok spec' ->
          checkb
            (Printf.sprintf "round-trip %s" (Dispatch.name spec))
            true (spec = spec')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    (Dispatch.builtin @ [ Dispatch.Random_tiebreak 42 ]);
  checkb "bare random means seed 0" true
    (Dispatch.spec_of_string "random" = Ok (Dispatch.Random_tiebreak 0));
  (match Dispatch.spec_of_string "nope" with
  | Ok _ -> Alcotest.fail "bogus name accepted"
  | Error msg ->
      let contains frag =
        let fl = String.length frag and ml = String.length msg in
        let rec scan i =
          i + fl <= ml && (String.sub msg i fl = frag || scan (i + 1))
        in
        scan 0
      in
      checkb "error lists the valid names" true
        (List.for_all contains
           [ "list-priority"; "least-loaded"; "earliest-completion"; "locality" ]));
  (match Dispatch.spec_of_string "random:x" with
  | Ok _ -> Alcotest.fail "bad seed accepted"
  | Error _ -> ());
  checki "five built-in families" 5 (List.length Dispatch.builtin)

(* ----------------------- golden equivalence ------------------------- *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario_print (n, m, k, p, seed) =
  Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let sizes = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:4.0) in
  let instance =
    Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ~sizes ests
  in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j ->
        Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults =
    Trace.merge
      (Trace.random_crashes rng ~m ~p ~horizon)
      (Trace.merge
         (Trace.random_outages rng ~m ~p ~horizon ~duration:(0.5, 5.0))
         (Trace.random_slowdowns rng ~m ~p ~horizon ~factor:(0.2, 0.9)))
  in
  (instance, realization, placement, order, faults)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let outcomes_identical (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.completed = b.Engine.completed
  && a.Engine.stranded = b.Engine.stranded
  && a.Engine.makespan = b.Engine.makespan
  && a.Engine.wasted = b.Engine.wasted
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Engine.Stranded, Engine.Stranded -> true
         | Engine.Finished e, Engine.Finished f -> entries_equal e f
         | _ -> false)
       a.Engine.fates b.Engine.fates
  && Json.to_string (Metrics.to_json a.Engine.metrics)
     = Json.to_string (Metrics.to_json b.Engine.metrics)

(* THE golden property of the tentpole refactor: passing the default
   policy explicitly is bit-for-bit the engine with no policy argument —
   fates, floats, events, metrics — across mixed fault regimes,
   speculation on/off, metrics on/off, and recovery none/neutral/active.
   Any drift the dispatch extraction introduced in the default path
   shows up here. *)
let prop_default_policy_is_golden =
  QCheck.Test.make
    ~name:"explicit list-priority is bit-for-bit the default engine"
    ~count:320 scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults = build s in
      let speculation = if seed mod 3 = 0 then Some 1.3 else None in
      let metrics_on = seed mod 2 = 0 in
      let recovery =
        match seed mod 5 with
        | 0 | 1 ->
            Recovery.make ~detection_latency:0.5 ~rereplication_target:(Recovery.Fixed 2)
              ~bandwidth:1.0 ~checkpoint_interval:1.0 ~max_retries:2 ()
        | 2 -> Recovery.make ()
        | _ -> Recovery.none
      in
      let registry () = if metrics_on then Metrics.create () else Metrics.disabled in
      let a, ev_a =
        Engine.run_faulty_traced ?speculation ~recovery ~metrics:(registry ())
          instance realization ~faults ~placement ~order
      in
      let b, ev_b =
        Engine.run_faulty_traced ?speculation
          ~dispatch:Dispatch.List_priority ~recovery ~metrics:(registry ())
          instance realization ~faults ~placement ~order
      in
      outcomes_identical a b && ev_a = ev_b)

(* Same golden check for the healthy engine: schedule and event log. *)
let prop_default_policy_is_golden_healthy =
  QCheck.Test.make
    ~name:"healthy engine: explicit list-priority is bit-for-bit default"
    ~count:300 scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, _ = build s in
      let m = Instance.m instance in
      let speeds =
        if seed mod 2 = 0 then
          Some (Array.init m (fun i -> 0.5 +. (0.5 *. float_of_int (i + 1))))
        else None
      in
      let a, ev_a =
        Engine.run_traced ?speeds instance realization ~placement ~order
      in
      let b, ev_b =
        Engine.run_traced ?speeds ~dispatch:Dispatch.List_priority instance
          realization ~placement ~order
      in
      ev_a = ev_b
      && Array.for_all2 entries_equal (entries a) (entries b))

(* Work conservation: whichever policy runs, the healthy engine never
   raises [Unschedulable] on well-formed inputs and schedules every
   task. *)
let prop_policies_work_conserving =
  QCheck.Test.make ~name:"every policy schedules every task (healthy)"
    ~count:200 scenario (fun s ->
      let instance, realization, placement, order, _ = build s in
      List.for_all
        (fun dispatch ->
          let schedule =
            Engine.run ~dispatch instance realization ~placement ~order
          in
          Array.length (entries schedule) = Instance.n instance)
        Dispatch.builtin)

(* The reachability property: under full replication, with at least one
   machine that never fails and healing enabled, every work-conserving
   policy completes exactly the same task set as the default — namely
   all of them. Stranding is a property of the data, not the rule. *)
let reach_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 2 5 in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, p, seed))

let reach_scenario =
  QCheck.make
    ~print:(fun (n, m, p, seed) ->
      Printf.sprintf "n=%d m=%d p=%.3f seed=%d" n m p seed)
    reach_gen

let prop_policy_reachability =
  QCheck.Test.make
    ~name:"full replication + survivor: all policies complete the same set"
    ~count:300 reach_scenario (fun (n, m, p, seed) ->
      let rng = Rng.create ~seed () in
      let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
      let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
      let realization = Realization.uniform_factor instance rng in
      let placement () = Array.init n (fun _ -> Bitset.full m) in
      let order = Instance.lpt_order instance in
      let horizon = 2.0 *. Realization.total realization in
      (* Machine m-1 never faults, so some full-replica holder survives
         and every task stays reachable. *)
      let faults =
        Trace.of_events ~m
          (List.concat_map
             (fun i ->
               let events = ref [] in
               if Rng.float rng < p then
                 events :=
                   {
                     Fault.machine = i;
                     time = Rng.float_range rng ~lo:0.0 ~hi:horizon;
                     kind = Fault.Crash;
                   }
                   :: !events;
               if Rng.float rng < p then begin
                 let t = Rng.float_range rng ~lo:0.0 ~hi:horizon in
                 events :=
                   outage ~machine:i ~time:t
                     ~until:(t +. Rng.float_range rng ~lo:0.5 ~hi:5.0)
                   :: !events
               end;
               !events)
             (List.init (m - 1) (fun i -> i)))
      in
      let recovery =
        Recovery.make ~detection_latency:0.25 ~rereplication_target:(Recovery.Fixed 2)
          ~bandwidth:2.0 ()
      in
      let completed_set dispatch =
        let outcome =
          Engine.run_faulty ~dispatch ~recovery instance realization ~faults
            ~placement:(placement ()) ~order
        in
        ( Array.map
            (function Engine.Finished _ -> true | Engine.Stranded -> false)
            outcome.Engine.fates,
          outcome.Engine.stranded )
      in
      let base_done, base_stranded = completed_set Dispatch.default in
      base_stranded = []
      && List.for_all
           (fun dispatch ->
             let done_, stranded = completed_set dispatch in
             stranded = base_stranded && done_ = base_done)
           Dispatch.builtin)

(* ------------------- re-dispatch determinism ------------------------ *)

(* Pins the contract now homed in [Dispatch.redispatch_order]: machines
   freed at the same instant (here a speculative race ending) look for
   new work in increasing machine id.

   Construction: m=3, submission order. t0 lives on {0} (est=actual=6),
   t1 on {0,1,2} (est=actual=9), t2 on {0,2} (est 4, actual 8).
   t=0: m0 starts t0, m1 starts t1, m2 starts t2. beta=1 arms t2's
   straggler check at t=4 (no idle holder yet). t=6: m0 finishes t0 and
   speculates t2 (backup would finish at 14). t=7.5: an outage kills m1;
   t1 returns to the pool, every machine busy. t=8: t2's original wins
   on m2; the backup on m0 is cancelled. Machines 2 and 0 are freed at
   the same instant — re-dispatch order [0; 2] hands t1 to machine 0
   (start 8, finish 17). An unsorted [2; 0] would hand it to machine 2:
   that is exactly the regression this test catches. *)
let redispatch_order_pinned () =
  let instance =
    Instance.of_ests ~m:3 ~alpha:(Uncertainty.alpha 2.0) [| 6.0; 9.0; 4.0 |]
  in
  let realization = Realization.of_actuals instance [| 6.0; 9.0; 8.0 |] in
  let placement =
    [| Bitset.of_list 3 [ 0 ]; Bitset.of_list 3 [ 0; 1; 2 ]; Bitset.of_list 3 [ 0; 2 ] |]
  in
  let faults =
    Trace.of_events ~m:3 [ outage ~machine:1 ~time:7.5 ~until:100.0 ]
  in
  let outcome, events =
    Engine.run_faulty_traced ~speculation:1.0 instance realization ~faults
      ~placement ~order:(submission_order 3)
  in
  checki "all complete" 3 outcome.Engine.completed;
  let e1 = finished_entry outcome 1 in
  checki "t1 re-dispatched to the lowest freed machine id" 0
    e1.Schedule.machine;
  close "t1 restarts when the race ends" 8.0 e1.Schedule.start;
  close "t1 finishes from scratch" 17.0 e1.Schedule.finish;
  checkb "the backup on m0 was cancelled at t=8" true
    (List.exists
       (function
         | Engine.Cancelled { time; machine = 0; task = 2 } -> time = 8.0
         | _ -> false)
       events);
  (* The contract itself, as exposed by the policy value. *)
  let view =
    {
      Dispatch.n = 3;
      m = 3;
      order = submission_order 3;
      pos_of = submission_order 3;
      dispatchable = [| true; true; true |];
      holders = placement;
      est = Array.init 3 (Instance.est instance);
      speed = [| 1.0; 1.0; 1.0 |];
      load = [| 0.0; 0.0; 0.0 |];
      now = [| 0.0 |];
      available = (fun _ -> true);
      holders_stable = true;
      topology = None;
      size = [||];
    }
  in
  let t = Dispatch.make Dispatch.default view in
  Alcotest.(check (list int))
    "redispatch_order sorts by machine id" [ 0; 2; 5 ]
    (Dispatch.redispatch_order t [ 2; 5; 0 ])

(* ----------------------- alternative policies ----------------------- *)

(* Least-loaded holder, probed directly on the view: machine 0 carries
   load 10 while machine 1 — available, load 0 — also holds t0. The
   deferral is visible only mid-run (loads start all-equal, and with two
   machines the idle one is always a least-loaded holder), so the test
   sets the loads directly rather than driving a full simulation. *)
let least_loaded_defers () =
  let holders = [| Bitset.of_list 2 [ 0; 1 ]; Bitset.of_list 2 [ 0 ] |] in
  let dispatchable = [| true; true |] in
  let load = [| 10.0; 0.0 |] in
  let view =
    {
      Dispatch.n = 2;
      m = 2;
      order = [| 0; 1 |];
      pos_of = [| 0; 1 |];
      dispatchable;
      holders;
      est = [| 3.0; 5.0 |];
      speed = [| 1.0; 1.0 |];
      load;
      now = [| 0.0 |];
      available = (fun _ -> true);
      holders_stable = true;
      topology = None;
      size = [||];
    }
  in
  (* Least-loaded has m0 defer t0 to the idle holder and fall through to
     t1, which only m0 holds. The default rule takes t0 outright. *)
  let ll = Dispatch.make Dispatch.Least_loaded_holder view in
  let lp = Dispatch.make Dispatch.List_priority view in
  Alcotest.(check (option int))
    "default takes the first eligible task" (Some 0)
    (Dispatch.select lp ~time:0.0 ~machine:0);
  Alcotest.(check (option int))
    "least-loaded defers t0 to the idle holder and takes t1" (Some 1)
    (Dispatch.select ll ~time:0.0 ~machine:0);
  Alcotest.(check (option int))
    "machine 1 is its own least-loaded holder" (Some 0)
    (Dispatch.select ll ~time:0.0 ~machine:1);
  (* Fallback keeps the rule work-conserving: with t1 out of the pool,
     m0's only eligible task still prefers the lighter holder, but m0
     must take it rather than idle. *)
  dispatchable.(1) <- false;
  Alcotest.(check (option int))
    "work-conserving fallback: deferring everything still selects" (Some 0)
    (Dispatch.select ll ~time:0.0 ~machine:0)

(* Earliest estimated completion = SPT restricted to held data. *)
let earliest_completion_is_spt () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 9.0; 2.0; 5.0 |]
  in
  let realization = Realization.exact instance in
  let placement =
    [| Bitset.full 2; Bitset.of_list 2 [ 0 ]; Bitset.full 2 |]
  in
  (* LPT order is [0;2;1]. Default m0 takes t0 (est 9); SPT takes t1
     (est 2), then t2 (est 5), then t0. *)
  let schedule =
    Engine.run ~dispatch:Dispatch.Earliest_estimated_completion instance
      realization ~placement ~order:(Instance.lpt_order instance)
  in
  let es = entries schedule in
  checki "t1 first on m0" 0 es.(1).Schedule.machine;
  close "t1 starts immediately" 0.0 es.(1).Schedule.start;
  (* m1 holds only t0 and t2: takes t2 (est 5) over t0 (est 9). *)
  checki "t2 on m1" 1 es.(2).Schedule.machine;
  close "t2 starts immediately" 0.0 es.(2).Schedule.start;
  close "t0 waits behind the shorter t1" 2.0 es.(0).Schedule.start;
  (* Ties fall back to priority order: with all-equal estimates the
     policy is bit-for-bit list-priority. *)
  let tied =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 3.0; 3.0; 3.0 |]
  in
  let tied_r = Realization.exact tied in
  let tied_p = Array.make 3 (Bitset.full 2) in
  let order = submission_order 3 in
  let a = Engine.run tied tied_r ~placement:tied_p ~order in
  let b =
    Engine.run ~dispatch:Dispatch.Earliest_estimated_completion tied tied_r
      ~placement:tied_p ~order
  in
  checkb "all-tied SPT equals list-priority" true
    (Array.for_all2 entries_equal (entries a) (entries b))

let random_tiebreak_behavior () =
  (* Distinct estimates: no ties, so any seed coincides with the default
     rule. *)
  let distinct =
    Instance.of_ests ~m:3 ~alpha:Uncertainty.alpha_exact
      [| 7.0; 5.0; 3.0; 2.0; 1.0 |]
  in
  let r = Realization.exact distinct in
  let p = Array.make 5 (Bitset.full 3) in
  let order = Instance.lpt_order distinct in
  let base = Engine.run distinct r ~placement:p ~order in
  List.iter
    (fun seed ->
      let s =
        Engine.run ~dispatch:(Dispatch.Random_tiebreak seed) distinct r
          ~placement:p ~order
      in
      checkb
        (Printf.sprintf "distinct estimates: seed %d = default" seed)
        true
        (Array.for_all2 entries_equal (entries base)
           (entries s)))
    [ 0; 1; 17 ];
  (* Identical estimates: the rule is deterministic given the seed, and
     some seed pair must disagree on the assignment. *)
  let tied =
    Instance.of_ests ~m:3 ~alpha:Uncertainty.alpha_exact (Array.make 9 4.0)
  in
  let tied_r = Realization.exact tied in
  let tied_p = Array.make 9 (Bitset.full 3) in
  let torder = submission_order 9 in
  let run_seed seed =
    entries
      (Engine.run ~dispatch:(Dispatch.Random_tiebreak seed) tied tied_r
         ~placement:tied_p ~order:torder)
  in
  checkb "same seed, same schedule" true
    (Array.for_all2 entries_equal (run_seed 5) (run_seed 5));
  let machine_of seed = Array.map (fun e -> e.Schedule.machine) (run_seed seed) in
  checkb "some seeds shuffle the tied assignment" true
    (List.exists
       (fun seed -> machine_of seed <> machine_of 0)
       [ 1; 2; 3; 4; 5; 6; 7 ])

(* Reference equivalence for the zero-alloc least-loaded rewrite: the
   original algorithm, frozen here with its refs and [Bitset.iter]
   closure, probed against the module's implementation on random views —
   arbitrary loads, holder sets, availability, and priority order. *)
let reference_least_loaded (v : Dispatch.view) ~machine:i =
  let fallback = ref None and result = ref None in
  let pos = ref 0 in
  while !result = None && !pos < v.Dispatch.n do
    let j = v.Dispatch.order.(!pos) in
    if v.Dispatch.dispatchable.(j) && Bitset.mem v.Dispatch.holders.(j) i
    then begin
      if !fallback = None then fallback := Some j;
      let better = ref false in
      Bitset.iter
        (fun k ->
          if
            k <> i
            && v.Dispatch.available k
            && v.Dispatch.load.(k) < v.Dispatch.load.(i)
          then better := true)
        v.Dispatch.holders.(j);
      if not !better then result := Some j
    end;
    incr pos
  done;
  if !result <> None then !result else !fallback

let view_scenario =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "n=%d m=%d seed=%d" n m seed)
    QCheck.Gen.(
      let* n = int_range 1 10 in
      let* m = int_range 1 5 in
      let* seed = int_bound 1_000_000 in
      return (n, m, seed))

let prop_least_loaded_matches_reference =
  QCheck.Test.make
    ~name:"least-loaded select matches the pre-rewrite reference" ~count:500
    view_scenario (fun (n, m, seed) ->
      let rng = Rng.create ~seed () in
      let order = Array.init n (fun j -> j) in
      Rng.shuffle rng order;
      let pos_of = Array.make n 0 in
      Array.iteri (fun p j -> pos_of.(j) <- p) order;
      let holders =
        Array.init n (fun _ ->
            let s = Bitset.create m in
            for i = 0 to m - 1 do
              if Rng.bernoulli rng ~p:0.6 then Bitset.add s i
            done;
            if Bitset.cardinal s = 0 then Bitset.add s (Rng.int rng m);
            s)
      in
      let dispatchable = Array.init n (fun _ -> Rng.bernoulli rng ~p:0.7) in
      (* Coin-flip duplicated loads so strict-inequality ties are hit. *)
      let load =
        Array.init m (fun _ ->
            if Rng.bernoulli rng ~p:0.3 then 5.0
            else Rng.float_range rng ~lo:0.0 ~hi:10.0)
      in
      let avail = Array.init m (fun _ -> Rng.bernoulli rng ~p:0.8) in
      let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:9.0) in
      let view =
        {
          Dispatch.n;
          m;
          order;
          pos_of;
          dispatchable;
          holders;
          est = ests;
          speed = Array.make m 1.0;
          load;
          now = [| 0.0 |];
          available = (fun k -> avail.(k));
          holders_stable = true;
          topology = None;
          size = [||];
        }
      in
      let ll = Dispatch.make Dispatch.Least_loaded_holder view in
      Array.for_all
        (fun i ->
          Dispatch.select ll ~time:0.0 ~machine:i
          = reference_least_loaded view ~machine:i)
        (Array.init m (fun i -> i)))

(* Reference equivalence for the list-priority rewrite (S1): the rule's
   meaning is stateless — the minimum-position dispatchable task holding
   the asking machine — and the cursors (per-machine or per-bucket) are
   just an incremental evaluation of that scan. Both variants are driven
   side by side through engine-shaped histories (select-then-start,
   pool re-entries with [notify]) against the stateless scan. The
   bucketed variant is forced by sharing holder bitsets physically
   (holders_stable = true, few distinct sets); the plain variant by
   clearing [holders_stable] on an otherwise identical view. *)
let reference_list_priority (v : Dispatch.view) ~machine:i =
  let rec scan pos =
    if pos >= v.Dispatch.n then -1
    else
      let j = v.Dispatch.order.(pos) in
      if v.Dispatch.dispatchable.(j) && Bitset.mem v.Dispatch.holders.(j) i
      then j
      else scan (pos + 1)
  in
  scan 0

let prop_list_priority_matches_reference =
  QCheck.Test.make
    ~name:"list-priority (plain and bucketed) matches the stateless scan"
    ~count:500 view_scenario (fun (n, m, seed) ->
      let rng = Rng.create ~seed () in
      let order = Array.init n (fun j -> j) in
      Rng.shuffle rng order;
      let pos_of = Array.make n 0 in
      Array.iteri (fun p j -> pos_of.(j) <- p) order;
      (* A small pool of physically shared holder sets: group placements
         share bitsets across tasks, which is what makes the bucket
         count small and engages the bucketed variant. *)
      let pool_size = 1 + Rng.int rng 5 in
      let pool =
        Array.init pool_size (fun _ ->
            let s = Bitset.create m in
            for i = 0 to m - 1 do
              if Rng.bernoulli rng ~p:0.6 then Bitset.add s i
            done;
            if Bitset.cardinal s = 0 then Bitset.add s (Rng.int rng m);
            s)
      in
      let holders = Array.init n (fun _ -> pool.(Rng.int rng pool_size)) in
      let dispatchable = Array.init n (fun _ -> Rng.bernoulli rng ~p:0.8) in
      let view =
        {
          Dispatch.n;
          m;
          order;
          pos_of;
          dispatchable;
          holders;
          est = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:9.0);
          speed = Array.make m 1.0;
          load = Array.make m 0.0;
          now = [| 0.0 |];
          available = (fun _ -> true);
          holders_stable = true;
          topology = None;
          size = [||];
        }
      in
      (* Both instances share the view's live arrays, so one mutation of
         [dispatchable] is seen by plain, bucketed, and reference alike. *)
      let bucketed = Dispatch.make Dispatch.List_priority view in
      let plain =
        Dispatch.make Dispatch.List_priority
          { view with Dispatch.holders_stable = false }
      in
      let ok = ref true in
      for _ = 1 to 3 * (n + 1) do
        if Rng.bernoulli rng ~p:0.7 then begin
          (* An idle machine asks for work and starts what it gets —
             the only way the engine ever consumes a selection. *)
          let i = Rng.int rng m in
          let r = reference_list_priority view ~machine:i in
          let b = Dispatch.select_machine bucketed ~machine:i in
          let p = Dispatch.select_machine plain ~machine:i in
          if b <> r || p <> r then ok := false;
          if r >= 0 then dispatchable.(r) <- false
        end
        else begin
          (* A task returns to the pool (a kill, a streaming arrival):
             the engine flips the flag and notifies the policy. *)
          let j = Rng.int rng n in
          if not dispatchable.(j) then begin
            dispatchable.(j) <- true;
            Dispatch.notify_available bucketed ~task:j;
            Dispatch.notify_available plain ~task:j
          end
        end
      done;
      !ok)

(* Reference equivalence for the zero-alloc earliest-completion rewrite:
   the original algorithm, frozen here with its refs and boxed
   [infinity] accumulator, probed against the module's tail-recursive
   scan on random views — including non-unit speeds, since the rule
   divides by the asking machine's speed. *)
let reference_earliest_completion (v : Dispatch.view) ~machine:i =
  let best = ref (-1) and best_cost = ref infinity in
  for pos = 0 to v.Dispatch.n - 1 do
    let j = v.Dispatch.order.(pos) in
    if v.Dispatch.dispatchable.(j) && Bitset.mem v.Dispatch.holders.(j) i
    then begin
      let cost = v.Dispatch.est.(j) /. v.Dispatch.speed.(i) in
      if cost < !best_cost then begin
        best := j;
        best_cost := cost
      end
    end
  done;
  if !best >= 0 then Some !best else None

let prop_earliest_completion_matches_reference =
  QCheck.Test.make
    ~name:"earliest-completion select matches the pre-rewrite reference"
    ~count:500 view_scenario (fun (n, m, seed) ->
      let rng = Rng.create ~seed () in
      let order = Array.init n (fun j -> j) in
      Rng.shuffle rng order;
      let pos_of = Array.make n 0 in
      Array.iteri (fun p j -> pos_of.(j) <- p) order;
      let holders =
        Array.init n (fun _ ->
            let s = Bitset.create m in
            for i = 0 to m - 1 do
              if Rng.bernoulli rng ~p:0.6 then Bitset.add s i
            done;
            if Bitset.cardinal s = 0 then Bitset.add s (Rng.int rng m);
            s)
      in
      let dispatchable = Array.init n (fun _ -> Rng.bernoulli rng ~p:0.7) in
      (* Coin-flip duplicated estimates so strict-inequality ties are
         hit — ties must resolve to the priority order in both. *)
      let ests =
        Array.init n (fun _ ->
            if Rng.bernoulli rng ~p:0.3 then 4.0
            else Rng.float_range rng ~lo:0.5 ~hi:9.0)
      in
      let view =
        {
          Dispatch.n;
          m;
          order;
          pos_of;
          dispatchable;
          holders;
          est = ests;
          speed = Array.init m (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:2.0);
          load = Array.make m 0.0;
          now = [| 0.0 |];
          available = (fun _ -> true);
          holders_stable = true;
          topology = None;
          size = [||];
        }
      in
      let ec = Dispatch.make Dispatch.Earliest_estimated_completion view in
      Array.for_all
        (fun i ->
          Dispatch.select ec ~time:0.0 ~machine:i
          = reference_earliest_completion view ~machine:i)
        (Array.init m (fun i -> i)))

(* Locality without a topology is least-loaded by definition — pinned
   through the engine so spec naming, policy state, and the hot loop all
   agree. *)
let prop_locality_defaults_to_least_loaded =
  QCheck.Test.make ~name:"locality = least-loaded without a topology"
    ~count:200 scenario (fun s ->
      let instance, realization, placement, order, _ = build s in
      let a =
        Engine.run ~dispatch:Dispatch.Least_loaded_holder instance realization
          ~placement ~order
      in
      let b =
        Engine.run ~dispatch:Dispatch.Locality instance realization ~placement
          ~order
      in
      Array.for_all2 entries_equal (entries a) (entries b))

(* With a topology, locality inflates each candidate holder's load by
   the staging it would pay from the task's home machine. Mirror of
   [least_loaded_defers]: m0 (load 3) would defer t0 to the idle m1,
   but m1 sits across a 0.1-bandwidth link from t0's home (machine 0),
   so its effective cost is 0 + 1/0.1 = 10 > 3 and m0 keeps t0. *)
let locality_prices_staging () =
  let topo =
    Usched_model.Topology.make ~zone_of:[| 0; 1 |]
      ~bandwidth:[| [| infinity; 0.1 |]; [| 0.1; infinity |] |]
      ~latency:[| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |]
  in
  let mk topology size =
    {
      Dispatch.n = 2;
      m = 2;
      order = [| 0; 1 |];
      pos_of = [| 0; 1 |];
      dispatchable = [| true; true |];
      holders = [| Bitset.of_list 2 [ 0; 1 ]; Bitset.of_list 2 [ 0 ] |];
      est = [| 3.0; 5.0 |];
      speed = [| 1.0; 1.0 |];
      load = [| 3.0; 0.0 |];
      now = [| 0.0 |];
      available = (fun _ -> true);
      holders_stable = true;
      topology;
      size;
    }
  in
  let plain = Dispatch.make Dispatch.Locality (mk None [||]) in
  Alcotest.(check (option int))
    "without a topology, locality defers like least-loaded" (Some 1)
    (Dispatch.select plain ~time:0.0 ~machine:0);
  let priced =
    Dispatch.make Dispatch.Locality (mk (Some topo) [| 1.0; 1.0 |])
  in
  Alcotest.(check (option int))
    "cross-zone staging outweighs the idle holder: m0 keeps t0" (Some 0)
    (Dispatch.select priced ~time:0.0 ~machine:0);
  (* The idle cross-zone machine still takes its best option when asked:
     work conservation is untouched by the pricing. *)
  Alcotest.(check (option int))
    "m1 keeps serving what it holds" (Some 0)
    (Dispatch.select priced ~time:0.0 ~machine:1)

(* Every policy must refuse work the machine has no data for, and the
   faulty engine must respect availability under every policy. *)
let policies_respect_eligibility () =
  let instance =
    Instance.of_ests ~m:3 ~alpha:Uncertainty.alpha_exact [| 2.0; 3.0; 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement =
    [| Bitset.singleton 3 0; Bitset.singleton 3 1; Bitset.singleton 3 2 |]
  in
  List.iter
    (fun dispatch ->
      let schedule =
        Engine.run ~dispatch instance realization ~placement
          ~order:(submission_order 3)
      in
      Array.iteri
        (fun j e ->
          checki
            (Printf.sprintf "%s: task %d on its only holder"
               (Dispatch.name dispatch) j)
            j e.Schedule.machine)
        (entries schedule))
    Dispatch.builtin

(* ------------------------------ suite ------------------------------- *)

let () =
  Alcotest.run "dispatch"
    [
      ( "spec",
        [
          Alcotest.test_case "names and parsing" `Quick spec_names;
        ] );
      ( "golden",
        [
          QCheck_alcotest.to_alcotest prop_default_policy_is_golden;
          QCheck_alcotest.to_alcotest prop_default_policy_is_golden_healthy;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_policies_work_conserving;
          QCheck_alcotest.to_alcotest prop_policy_reachability;
          QCheck_alcotest.to_alcotest prop_least_loaded_matches_reference;
          QCheck_alcotest.to_alcotest prop_list_priority_matches_reference;
          QCheck_alcotest.to_alcotest prop_earliest_completion_matches_reference;
          QCheck_alcotest.to_alcotest prop_locality_defaults_to_least_loaded;
        ] );
      ( "redispatch",
        [
          Alcotest.test_case "freed machines re-dispatch in id order" `Quick
            redispatch_order_pinned;
        ] );
      ( "policies",
        [
          Alcotest.test_case "least-loaded defers to idle holder" `Quick
            least_loaded_defers;
          Alcotest.test_case "earliest-completion is restricted SPT" `Quick
            earliest_completion_is_spt;
          Alcotest.test_case "random tie-break: seeded, tie-only" `Quick
            random_tiebreak_behavior;
          Alcotest.test_case "locality prices cross-zone staging" `Quick
            locality_prices_staging;
          Alcotest.test_case "singleton placements pin every policy" `Quick
            policies_respect_eligibility;
        ] );
    ]
