(* Streaming service mode: arrival-process validation and generation,
   the Event_core ordering contract under mid-drain arrival injection,
   the golden pin that a stream with every arrival at t=0 reproduces the
   batch engine bit-for-bit, FCFS latency hand-checks, and the
   replicate-on-straggler / cancel-on-first-completion policy. *)

module Engine = Usched_desim.Engine
module Event_core = Usched_desim.Event_core
module Arrival = Usched_desim.Arrival
module Dispatch = Usched_desim.Dispatch
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Metrics = Usched_obs.Metrics
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* ------------------------- arrival processes ------------------------ *)

let nondecreasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(i - 1) then ok := false
  done;
  !ok

let arrival_constructors () =
  checkb "poisson rejects 0" true (raises_invalid (fun () -> Arrival.poisson ~rate:0.0));
  checkb "poisson rejects nan" true
    (raises_invalid (fun () -> Arrival.poisson ~rate:Float.nan));
  checkb "mmpp rejects empty" true
    (raises_invalid (fun () -> Arrival.mmpp ~rates:[||] ~switch:1.0));
  checkb "mmpp rejects all-zero" true
    (raises_invalid (fun () -> Arrival.mmpp ~rates:[| 0.0; 0.0 |] ~switch:1.0));
  checkb "mmpp accepts silence states" true
    (match Arrival.mmpp ~rates:[| 4.0; 0.0 |] ~switch:10.0 with
    | _ -> true
    | exception Invalid_argument _ -> false);
  checkb "trace rejects decreasing" true
    (raises_invalid (fun () -> Arrival.trace [| 1.0; 0.5 |]));
  checkb "trace rejects negative" true
    (raises_invalid (fun () -> Arrival.trace [| -1.0 |]));
  checkb "trace rejects nan" true
    (raises_invalid (fun () -> Arrival.trace [| Float.nan |]))

let arrival_generate () =
  let rng () = Rng.create ~seed:11 () in
  let a = Arrival.generate (Arrival.poisson ~rate:2.0) (rng ()) ~count:200 in
  checki "count" 200 (Array.length a);
  checkb "nondecreasing" true (nondecreasing a);
  checkb "deterministic" true
    (a = Arrival.generate (Arrival.poisson ~rate:2.0) (rng ()) ~count:200);
  let b =
    Arrival.generate
      (Arrival.mmpp ~rates:[| 5.0; 0.0 |] ~switch:2.0)
      (rng ()) ~count:100
  in
  checkb "mmpp nondecreasing" true (nondecreasing b);
  let t = Arrival.trace [| 0.0; 1.0; 1.0; 4.0 |] in
  checkb "trace replay" true
    (Arrival.generate t (rng ()) ~count:3 = [| 0.0; 1.0; 1.0 |]);
  checkb "trace too short raises" true
    (raises_invalid (fun () -> Arrival.generate t (rng ()) ~count:5));
  let u =
    Arrival.generate_until (Arrival.poisson ~rate:3.0) (rng ()) ~horizon:10.0
  in
  checkb "horizon respected" true (Array.for_all (fun x -> x < 10.0) u);
  checkb "horizon nondecreasing" true (nondecreasing u)

let arrival_of_string () =
  let ok s expected =
    match Arrival.of_string s with
    | Ok a -> Alcotest.(check string) s expected (Arrival.describe a)
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
  in
  ok "rate:2.5" "poisson:2.5";
  ok "poisson:1" "poisson:1";
  ok "mmpp:4,0:10" "mmpp:4,0:10";
  let tmp = Filename.temp_file "arrivals" ".txt" in
  Out_channel.with_open_text tmp (fun oc ->
      output_string oc "# header comment\n0.5\n\n1.25\n3\n");
  ok (Printf.sprintf "trace:%s" tmp) "trace:<3 arrivals>";
  Sys.remove tmp;
  let rejected s =
    match Arrival.of_string s with
    | Ok _ -> Alcotest.failf "%s accepted" s
    | Error msg ->
        (* Every parse error carries the grammar for the CLI. *)
        checkb
          (Printf.sprintf "%s error carries grammar" s)
          true
          (String.length msg >= String.length Arrival.grammar)
  in
  List.iter rejected
    [
      "rate:0";
      "rate:nan";
      "rate:inf";
      "rate:x";
      "mmpp:4,0";
      "mmpp:a,b:1";
      "mmpp:4,0:0";
      "trace:/nonexistent/arrivals.txt";
      "bogus:1";
      "noseparator";
    ];
  let bad = Filename.temp_file "arrivals" ".txt" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "1.0\n0.5\n");
  rejected (Printf.sprintf "trace:%s" bad);
  Sys.remove bad

(* ---------------- Event_core ordering under injection ---------------- *)

(* The determinism contract the whole streaming mode leans on: drained
   events come out sorted by (time, machine, class), insertion order
   within ties — including events pushed mid-drain at the current
   instant, which is exactly what an arrival waking idle machines does. *)
let injection_scenario =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 40 in
      return (seed, n))

let prop_ordering_under_injection =
  QCheck.Test.make
    ~name:"drain order is (time, machine, cls, seq) under mid-drain pushes"
    ~count:500 injection_scenario (fun (seed, n) ->
      let rng = Rng.create ~seed () in
      (* Times from a tiny set force heavy ties; machine -1 is the
         virtual arrival source. *)
      let random_key rng ~at_least =
        let time =
          Float.max at_least (float_of_int (Rng.int rng 3))
        in
        let machine = Rng.int rng 4 - 1 in
        let cls = Rng.int rng 4 in
        (time, machine, cls)
      in
      let q = Event_core.create ~dummy:0 () in
      let counter = ref 0 in
      let push (time, machine, cls) =
        Event_core.push q ~time ~machine ~cls !counter;
        incr counter
      in
      for _ = 1 to n do
        push (random_key rng ~at_least:0.0)
      done;
      let handled = ref [] in
      let budget = ref (3 * n) in
      Event_core.drain q ~handle:(fun ~time ~machine payload ->
          handled := (time, machine, payload) :: !handled;
          (* Inject arrivals and decisions at or after the current
             instant, as [on_arrive]'s wake-ups do. *)
          if !budget > 0 && Rng.bernoulli rng ~p:0.4 then begin
            decr budget;
            push (random_key rng ~at_least:time)
          end);
      let handled = List.rev !handled in
      (* Time, then machine within equal instants; payload ids must rise
         within equal (time, machine) pairs pushed with equal cls — we
         can't observe cls from the handler, so check the weaker chain
         (time, machine) nondecreasing plus global per-key FIFO via a
         reference sort at the end. *)
      let ok = ref true in
      let prev = ref neg_infinity in
      List.iter
        (fun (t, _, _) ->
          if t < !prev then ok := false;
          prev := t)
        handled;
      List.length handled = !counter && !ok)

(* A direct, fully-observable pin of the tie order: equal times, all
   four classes, both the source pseudo-machine and real machines, plus
   an arrival injected mid-drain at the current instant. *)
let ordering_pinned () =
  let q = Event_core.create ~dummy:0 () in
  (* payload = expected drain position. *)
  Event_core.push q ~time:0.0 ~machine:1 ~cls:Event_core.cls_decision 4;
  Event_core.push q ~time:0.0 ~machine:(-1) ~cls:Event_core.cls_arrival 0;
  Event_core.push q ~time:0.0 ~machine:0 ~cls:Event_core.cls_fault 1;
  Event_core.push q ~time:0.0 ~machine:0 ~cls:Event_core.cls_audit 3;
  Event_core.push q ~time:1.0 ~machine:0 ~cls:Event_core.cls_fault 6;
  let order = ref [] in
  Event_core.drain q ~handle:(fun ~time ~machine:_ payload ->
      (* When the first fault at t=0 fires, a same-instant completion
         lands behind it but before the audit: cls ordering, not push
         order. And a t=1 arrival beats the t=1 fault despite being
         pushed later (machine -1 first). *)
      if payload = 1 then
        Event_core.push q ~time ~machine:0 ~cls:Event_core.cls_arrival 2;
      if payload = 3 then
        Event_core.push q ~time:1.0 ~machine:(-1) ~cls:Event_core.cls_arrival 5;
      order := payload :: !order);
  Alcotest.(check (list int))
    "class then machine then seq" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.rev !order)

(* ------------------------- the golden pin ---------------------------- *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, seed))

let scenario =
  QCheck.make
    ~print:(fun (n, m, k, seed) ->
      Printf.sprintf "n=%d m=%d k=%d seed=%d" n m k seed)
    scenario_gen

let build (n, m, k, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j ->
        Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  (instance, realization, placement, Instance.lpt_order instance)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

(* THE golden property of the streaming tentpole: a stream whose
   arrivals all land at t=0 is the batch engine bit-for-bit — same
   machines, same float start/finish times, whatever the dispatch
   policy, metrics on or off — and its latencies are exactly the finish
   times. *)
let prop_stream_at_zero_is_batch =
  QCheck.Test.make
    ~name:"stream with all arrivals at t=0 reproduces the batch engine"
    ~count:320 scenario (fun ((n, _, _, seed) as s) ->
      let instance, realization, placement, order = build s in
      let dispatch =
        List.nth Dispatch.builtin (seed mod List.length Dispatch.builtin)
      in
      let metrics_on = seed mod 2 = 0 in
      let registry () =
        if metrics_on then Metrics.create () else Metrics.disabled
      in
      let batch =
        Engine.run ~dispatch ~metrics:(registry ()) instance realization
          ~placement ~order
      in
      let so =
        Engine.run_stream ~dispatch ~metrics:(registry ()) instance realization
          ~arrivals:(Array.make n 0.0) ~placement ~order
      in
      let stream_entries =
        Array.map
          (function
            | Engine.Finished e -> e
            | Engine.Stranded -> Alcotest.fail "stranded without faults")
          so.Engine.outcome.Engine.fates
      in
      so.Engine.outcome.Engine.completed = n
      && Array.for_all2 entries_equal
           (Array.init n (Schedule.entry batch))
           stream_entries
      && Array.length so.Engine.latencies = n
      && Array.for_all2
           (fun l (e : Schedule.entry) -> l = e.Schedule.finish)
           so.Engine.latencies stream_entries)

(* Latency accounting holds off the zero point too: finished tasks give
   finish - arrival in task order, stranded tasks are absent. *)
let prop_latencies_match_fates =
  QCheck.Test.make ~name:"latencies = finish - arrival over finished tasks"
    ~count:300 scenario (fun ((n, m, _, seed) as s) ->
      let instance, realization, placement, order = build s in
      let rng = Rng.create ~seed:(seed + 1) () in
      let arrivals =
        Arrival.generate (Arrival.poisson ~rate:1.5) rng ~count:n
      in
      let faults =
        Trace.random_crashes rng ~m ~p:0.3
          ~horizon:(2.0 *. Realization.total realization)
      in
      let so =
        Engine.run_stream ~faults instance realization ~arrivals ~placement
          ~order
      in
      let expected = ref [] in
      for j = n - 1 downto 0 do
        match so.Engine.outcome.Engine.fates.(j) with
        | Engine.Finished e ->
            expected := (e.Schedule.finish -. arrivals.(j)) :: !expected
        | Engine.Stranded -> ()
      done;
      Array.to_list so.Engine.latencies = !expected
      && Array.length so.Engine.latencies
         = so.Engine.outcome.Engine.completed
      && Array.for_all (fun l -> l >= 0.0) so.Engine.latencies)

(* ------------------------- hand-checks ------------------------------- *)

(* Single machine, FCFS: arrivals 0/1/2, each task takes exactly 5.
   The queue builds up: waits 0, 4, 8 -> latencies 5, 9, 13. *)
let fcfs_single_machine () =
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 5.0; 5.0; 5.0 |]
  in
  let realization = Realization.exact instance in
  let so =
    Engine.run_stream instance realization ~arrivals:[| 0.0; 1.0; 2.0 |]
      ~placement:(Array.make 3 (Bitset.full 1))
      ~order:[| 0; 1; 2 |]
  in
  checki "all done" 3 so.Engine.outcome.Engine.completed;
  close "drain" 15.0 so.Engine.outcome.Engine.makespan;
  Alcotest.(check (array (float 1e-9)))
    "latencies" [| 5.0; 9.0; 13.0 |] so.Engine.latencies

(* A task arriving while every machine is busy must wait even though it
   is dispatchable; a task arriving after the system drained restarts
   it. *)
let arrival_gap_restarts () =
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 2.0; 3.0 |]
  in
  let realization = Realization.exact instance in
  let so =
    Engine.run_stream instance realization ~arrivals:[| 0.0; 10.0 |]
      ~placement:(Array.make 2 (Bitset.full 1))
      ~order:[| 0; 1 |]
  in
  Alcotest.(check (array (float 1e-9)))
    "idle gap then fresh start" [| 2.0; 3.0 |] so.Engine.latencies;
  close "drain" 13.0 so.Engine.outcome.Engine.makespan

(* Replicate-on-straggler / cancel-on-first-completion: t0's actual is 4x
   its estimate; once it runs past beta=1.5 estimates, idle m1 (a replica
   holder) starts a backup at t=3; the original wins at t=8, the backup
   is cancelled and its 5 machine-time units are credited to wasted. *)
let speculation_cancels_loser () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 4.0) [| 2.0; 2.0 |]
  in
  let realization = Realization.of_actuals instance [| 8.0; 2.0 |] in
  let so, events =
    Engine.run_stream_traced ~speculation:1.5 instance realization
      ~arrivals:[| 0.0; 0.0 |]
      ~placement:(Array.make 2 (Bitset.full 2))
      ~order:[| 0; 1 |]
  in
  checki "both done" 2 so.Engine.outcome.Engine.completed;
  close "loser's run is wasted" 5.0 so.Engine.outcome.Engine.wasted;
  Alcotest.(check (array (float 1e-9)))
    "latencies" [| 8.0; 2.0 |] so.Engine.latencies;
  checkb "backup cancelled at the winner's completion" true
    (List.exists
       (function
         | Engine.Cancelled { time; machine = 1; task = 0 } -> time = 8.0
         | _ -> false)
       events);
  checkb "arrivals are in the event log" true
    (List.length
       (List.filter
          (function Engine.Arrived _ -> true | _ -> false)
          events)
    = 2)

(* Faults compose with arrivals: crash the only pre-arrival holder of a
   late task, and the healer re-replicates its data in time. *)
let stream_composes_with_faults () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 2.0; 2.0 |]
  in
  let realization = Realization.exact instance in
  (* t1's data only on machine 1, which crashes before t1 arrives. *)
  let placement = [| Bitset.full 2; Bitset.singleton 2 1 |] in
  let faults =
    Trace.of_events ~m:2
      [ { Fault.machine = 1; time = 1.0; kind = Fault.Crash } ]
  in
  let so =
    Engine.run_stream ~faults instance realization ~arrivals:[| 0.0; 5.0 |]
      ~placement ~order:[| 0; 1 |]
  in
  checki "late task stranded by the crash" 1
    so.Engine.outcome.Engine.completed;
  checkb "t1 stranded" true (so.Engine.outcome.Engine.stranded = [ 1 ]);
  checki "one latency for one finisher" 1 (Array.length so.Engine.latencies)

(* Streaming instruments exist exactly when streaming: batch snapshots
   must not grow new keys (handles register on creation). *)
let stream_metrics_registered () =
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 1.0; 1.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.make 2 (Bitset.full 1) in
  let order = [| 0; 1 |] in
  let metrics = Metrics.create () in
  let so =
    Engine.run_stream ~metrics instance realization ~arrivals:[| 0.0; 0.5 |]
      ~placement ~order
  in
  (match Metrics.find so.Engine.outcome.Engine.metrics "engine.arrivals" with
  | Some (Metrics.Counter c) -> checki "arrivals counted" 2 c
  | _ -> Alcotest.fail "engine.arrivals missing from a streaming run");
  (match Metrics.find so.Engine.outcome.Engine.metrics "engine.latency" with
  | Some (Metrics.Histogram { count; _ }) ->
      checki "latency observations" 2 count
  | _ -> Alcotest.fail "engine.latency missing from a streaming run");
  let batch =
    Engine.run_faulty ~metrics:(Metrics.create ()) instance realization
      ~faults:(Trace.empty ~m:1) ~placement ~order
  in
  checkb "no arrival instruments in batch snapshots" true
    (Metrics.find batch.Engine.metrics "engine.arrivals" = None
    && Metrics.find batch.Engine.metrics "engine.latency" = None)

let stream_validates_arrivals () =
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 1.0; 1.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.make 2 (Bitset.full 1) in
  let order = [| 0; 1 |] in
  let run arrivals () =
    ignore (Engine.run_stream instance realization ~arrivals ~placement ~order)
  in
  checkb "wrong length" true (raises_invalid (run [| 0.0 |]));
  checkb "negative" true (raises_invalid (run [| 0.0; -1.0 |]));
  checkb "nan" true (raises_invalid (run [| 0.0; Float.nan |]));
  checkb "infinite" true (raises_invalid (run [| 0.0; infinity |]))

(* ------------------------------ suite ------------------------------- *)

let () =
  Alcotest.run "stream"
    [
      ( "arrival",
        [
          Alcotest.test_case "constructors validate" `Quick arrival_constructors;
          Alcotest.test_case "generation" `Quick arrival_generate;
          Alcotest.test_case "of_string grammar" `Quick arrival_of_string;
        ] );
      ( "ordering",
        [
          QCheck_alcotest.to_alcotest prop_ordering_under_injection;
          Alcotest.test_case "tie-break pinned with injection" `Quick
            ordering_pinned;
        ] );
      ( "golden",
        [
          QCheck_alcotest.to_alcotest prop_stream_at_zero_is_batch;
          QCheck_alcotest.to_alcotest prop_latencies_match_fates;
        ] );
      ( "service",
        [
          Alcotest.test_case "FCFS single machine" `Quick fcfs_single_machine;
          Alcotest.test_case "idle gap" `Quick arrival_gap_restarts;
          Alcotest.test_case "speculation cancels the loser" `Quick
            speculation_cancels_loser;
          Alcotest.test_case "faults compose" `Quick stream_composes_with_faults;
          Alcotest.test_case "streaming instruments" `Quick
            stream_metrics_registered;
          Alcotest.test_case "arrival validation" `Quick
            stream_validates_arrivals;
        ] );
    ]
