(* Tests for the memory-budget-constrained placement. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let close = Alcotest.(check (float 1e-9))

let unit_instance ?(m = 4) ?(n = 16) () =
  Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0)
    (Array.init n (fun i -> 1.0 +. float_of_int (i mod 5)))

let never_exceeds_budget () =
  let inst = unit_instance () in
  List.iter
    (fun budget ->
      let p = Core.Memory_budget.placement ~budget inst in
      checkb
        (Printf.sprintf "budget %g respected" budget)
        true
        (Core.Memory_budget.max_memory_load inst p <= budget +. 1e-9))
    [ 4.0; 5.0; 7.0; 16.0 ]

let bare_budget_means_no_replicas () =
  (* 16 unit-size tasks on 4 machines: budget 4 leaves zero headroom. *)
  let inst = unit_instance () in
  let p = Core.Memory_budget.placement ~budget:4.0 inst in
  checki "singletons only" 1 (Core.Placement.max_replication p);
  checki "exactly n replicas" 16 (Core.Placement.total_replicas p)

let ample_budget_replicates_everywhere () =
  let inst = unit_instance () in
  let p = Core.Memory_budget.placement ~budget:16.0 inst in
  checki "full replication" 4 (Core.Placement.max_replication p);
  checki "n*m replicas" 64 (Core.Placement.total_replicas p)

let replicas_grow_with_budget () =
  let inst = unit_instance () in
  let replicas budget =
    Core.Placement.total_replicas (Core.Memory_budget.placement ~budget inst)
  in
  checkb "monotone" true
    (replicas 4.0 <= replicas 6.0
    && replicas 6.0 <= replicas 10.0
    && replicas 10.0 <= replicas 16.0)

let infeasible_cases () =
  let inst = unit_instance () in
  checkb "budget below task size" true
    (try
       ignore (Core.Memory_budget.placement ~budget:0.5 inst);
       false
     with Core.Memory_budget.Infeasible _ -> true);
  checkb "aggregate too small" true
    (try
       ignore (Core.Memory_budget.placement ~budget:2.0 inst);
       false
     with Core.Memory_budget.Infeasible _ -> true);
  Alcotest.check_raises "non-positive budget"
    (Invalid_argument "Memory_budget: budget must be > 0") (fun () ->
      ignore (Core.Memory_budget.placement ~budget:0.0 inst))

let repair_moves_oversized_piles () =
  (* LPT on estimates piles big-data tasks together; repair must spread
     them to fit the budget. Sizes anti-correlated with estimates. *)
  let inst =
    Instance.of_ests ~m:2
      ~alpha:(Uncertainty.alpha 1.5)
      ~sizes:[| 1.0; 1.0; 4.0; 4.0 |]
      [| 10.0; 10.0; 1.0; 1.0 |]
  in
  (* LPT by estimate puts tasks 2,3 (the big-data ones) on... whatever it
     does, budget 5 forces one big-data task per machine. *)
  let p = Core.Memory_budget.placement ~budget:5.0 inst in
  checkb "fits" true (Core.Memory_budget.max_memory_load inst p <= 5.0 +. 1e-9)

let schedules_valid_and_improve () =
  let inst = unit_instance () in
  let rng = Rng.create ~seed:17 () in
  let realization = Realization.extremes ~p_high:0.3 inst rng in
  let makespan budget =
    let algo = Core.Memory_budget.algorithm ~budget in
    let placement, schedule = Core.Two_phase.run_full algo inst realization in
    checkb "valid" true
      (Schedule.validate ~placement:(Core.Placement.sets placement) inst
         realization schedule
      = []);
    Schedule.makespan schedule
  in
  let tight = makespan 4.0 and ample = makespan 16.0 in
  checkb "more memory never hurts on this instance" true (ample <= tight +. 1e-9)

let ample_equals_full_replication () =
  let inst = unit_instance () in
  let rng = Rng.create ~seed:18 () in
  let realization = Realization.uniform_factor inst rng in
  close "matches LPT-No Restriction"
    (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction inst
       realization)
    (Core.Two_phase.makespan (Core.Memory_budget.algorithm ~budget:16.0) inst
       realization)

let () =
  Alcotest.run "memory_budget"
    [
      ( "unit",
        [
          Alcotest.test_case "budget respected" `Quick never_exceeds_budget;
          Alcotest.test_case "bare budget" `Quick bare_budget_means_no_replicas;
          Alcotest.test_case "ample budget" `Quick ample_budget_replicates_everywhere;
          Alcotest.test_case "monotone replicas" `Quick replicas_grow_with_budget;
          Alcotest.test_case "infeasibility" `Quick infeasible_cases;
          Alcotest.test_case "repair" `Quick repair_moves_oversized_piles;
          Alcotest.test_case "valid + improving" `Quick schedules_valid_and_improve;
          Alcotest.test_case "ample = full replication" `Quick
            ample_equals_full_replication;
        ] );
    ]
