(* Unit and property tests for the PRNG substrate. *)

module Splitmix64 = Usched_prng.Splitmix64
module Xoshiro256 = Usched_prng.Xoshiro256
module Rng = Usched_prng.Rng
module Dist = Usched_prng.Dist

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Reference outputs of SplitMix64 seeded with 1234567, from the public
   C reference implementation. *)
let splitmix_reference () =
  let g = Splitmix64.create 1234567L in
  let observed = List.init 4 (fun _ -> Splitmix64.next g) in
  let expected =
    [ 6457827717110365317L; 3203168211198807973L; -8629252141511181193L;
      4593380528125082431L ]
  in
  check Alcotest.(list int64) "first outputs" expected observed

let splitmix_deterministic () =
  let a = Splitmix64.create 99L and b = Splitmix64.create 99L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let splitmix_copy_independent () =
  let a = Splitmix64.create 5L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  check Alcotest.int64 "copy continues identically" (Splitmix64.next a)
    (Splitmix64.next b);
  ignore (Splitmix64.next a);
  (* advancing a further does not touch b *)
  let a' = Splitmix64.next a and b' = Splitmix64.next b in
  checkb "diverged" true (a' <> b')

let splitmix_split_differs () =
  let a = Splitmix64.create 5L in
  let child = Splitmix64.split a in
  let xs = List.init 10 (fun _ -> Splitmix64.next a) in
  let ys = List.init 10 (fun _ -> Splitmix64.next child) in
  checkb "parent and child streams differ" true (xs <> ys)

let float_unit_interval () =
  let g = Splitmix64.create 0L in
  for _ = 1 to 10_000 do
    let x = Splitmix64.next_float g in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Xoshiro256.of_state (0L, 0L, 0L, 0L)))

let xoshiro_deterministic () =
  let a = Xoshiro256.create 7L and b = Xoshiro256.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let xoshiro_jump_disjoint () =
  let a = Xoshiro256.create 7L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let xs = List.init 50 (fun _ -> Xoshiro256.next a) in
  let ys = List.init 50 (fun _ -> Xoshiro256.next b) in
  checkb "jumped stream differs" true (xs <> ys)

let xoshiro_float_unit_interval () =
  let g = Xoshiro256.create 3L in
  for _ = 1 to 10_000 do
    let x = Xoshiro256.next_float g in
    checkb "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let rng_int_bounds () =
  let rng = Rng.create ~seed:1 () in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let x = Rng.int rng bound in
      checkb "in range" true (x >= 0 && x < bound)
    done
  done

let rng_int_rejects_nonpositive () =
  let rng = Rng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int rng 0))

let rng_int_uniformity () =
  (* Chi-squared-ish sanity: all 8 buckets within 3x of each other. *)
  let rng = Rng.create ~seed:2 () in
  let counts = Array.make 8 0 in
  for _ = 1 to 80_000 do
    let x = Rng.int rng 8 in
    counts.(x) <- counts.(x) + 1
  done;
  let lo = Array.fold_left Stdlib.min max_int counts in
  let hi = Array.fold_left Stdlib.max 0 counts in
  checkb "roughly uniform" true (hi < 3 * lo)

let rng_int_range_inclusive () =
  let rng = Rng.create ~seed:3 () in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let x = Rng.int_range rng ~lo:(-2) ~hi:2 in
    checkb "in [-2,2]" true (x >= -2 && x <= 2);
    if x = -2 then seen_lo := true;
    if x = 2 then seen_hi := true
  done;
  checkb "endpoints reachable" true (!seen_lo && !seen_hi)

let rng_float_range () =
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 10_000 do
    let x = Rng.float_range rng ~lo:2.5 ~hi:3.5 in
    checkb "in [2.5,3.5)" true (x >= 2.5 && x < 3.5)
  done

let rng_shuffle_permutation () =
  let rng = Rng.create ~seed:5 () in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 100 (fun i -> i)) sorted

let rng_split_independent () =
  let rng = Rng.create ~seed:6 () in
  let child1 = Rng.split rng in
  let child2 = Rng.split rng in
  let s1 = List.init 20 (fun _ -> Rng.int64 child1) in
  let s2 = List.init 20 (fun _ -> Rng.int64 child2) in
  checkb "children differ" true (s1 <> s2)

let rng_bernoulli_frequency () =
  let rng = Rng.create ~seed:7 () in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  checkb "close to 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let dist_exponential_mean () =
  let rng = Rng.create ~seed:8 () in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 4" true (Float.abs (mean -. 4.0) < 0.15)

let dist_pareto_minimum () =
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 10_000 do
    checkb "above scale" true (Dist.pareto rng ~shape:1.5 ~scale:2.0 >= 2.0)
  done

let dist_log_uniform_range () =
  let rng = Rng.create ~seed:10 () in
  for _ = 1 to 10_000 do
    let x = Dist.log_uniform rng ~lo:0.5 ~hi:2.0 in
    checkb "in range" true (x >= 0.5 && x <= 2.0)
  done

let dist_log_uniform_symmetry () =
  (* log-uniform on [1/a, a] should put half the mass below 1. *)
  let rng = Rng.create ~seed:11 () in
  let below = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dist.log_uniform rng ~lo:0.25 ~hi:4.0 < 1.0 then incr below
  done;
  let freq = float_of_int !below /. float_of_int n in
  checkb "median at 1" true (Float.abs (freq -. 0.5) < 0.02)

let dist_normal_moments () =
  let rng = Rng.create ~seed:12 () in
  let n = 100_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Dist.normal rng ~mu:1.0 ~sigma:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  checkb "mean near 1" true (Float.abs (mean -. 1.0) < 0.05);
  checkb "variance near 4" true (Float.abs (var -. 4.0) < 0.2)

let dist_truncated_in_bounds () =
  let rng = Rng.create ~seed:13 () in
  let sampler rng = Dist.exponential rng ~mean:10.0 in
  for _ = 1 to 5_000 do
    let x = Dist.truncated sampler ~lo:2.0 ~hi:3.0 rng in
    checkb "within bounds" true (x >= 2.0 && x <= 3.0)
  done

let dist_bimodal_mixture () =
  let rng = Rng.create ~seed:14 () in
  let longs = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x =
      Dist.bimodal rng ~p_long:0.2 ~short:(fun _ -> 1.0) ~long:(fun _ -> 100.0)
    in
    if x > 50.0 then incr longs
  done;
  let freq = float_of_int !longs /. float_of_int n in
  checkb "long fraction near 0.2" true (Float.abs (freq -. 0.2) < 0.02)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference values" `Quick splitmix_reference;
          Alcotest.test_case "deterministic" `Quick splitmix_deterministic;
          Alcotest.test_case "copy independent" `Quick splitmix_copy_independent;
          Alcotest.test_case "split differs" `Quick splitmix_split_differs;
          Alcotest.test_case "floats in [0,1)" `Quick float_unit_interval;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "zero state rejected" `Quick xoshiro_zero_state_rejected;
          Alcotest.test_case "deterministic" `Quick xoshiro_deterministic;
          Alcotest.test_case "jump disjoint" `Quick xoshiro_jump_disjoint;
          Alcotest.test_case "floats in [0,1)" `Quick xoshiro_float_unit_interval;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick rng_int_rejects_nonpositive;
          Alcotest.test_case "int uniformity" `Quick rng_int_uniformity;
          Alcotest.test_case "int_range inclusive" `Quick rng_int_range_inclusive;
          Alcotest.test_case "float_range" `Quick rng_float_range;
          Alcotest.test_case "shuffle is a permutation" `Quick rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick rng_split_independent;
          Alcotest.test_case "bernoulli frequency" `Quick rng_bernoulli_frequency;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick dist_exponential_mean;
          Alcotest.test_case "pareto minimum" `Quick dist_pareto_minimum;
          Alcotest.test_case "log-uniform range" `Quick dist_log_uniform_range;
          Alcotest.test_case "log-uniform symmetry" `Quick dist_log_uniform_symmetry;
          Alcotest.test_case "normal moments" `Quick dist_normal_moments;
          Alcotest.test_case "truncated bounds" `Quick dist_truncated_in_bounds;
          Alcotest.test_case "bimodal mixture" `Quick dist_bimodal_mixture;
        ] );
    ]
