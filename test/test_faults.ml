(* Fault-injection engine: unit scenarios with hand-computed outcomes,
   and qcheck properties on random instances, placements, and traces. *)

module Engine = Usched_desim.Engine
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let submission_order n = Array.init n (fun j -> j)

let finished_entry outcome j =
  match outcome.Engine.fates.(j) with
  | Engine.Finished e -> e
  | Engine.Stranded -> Alcotest.failf "task %d stranded" j

(* ------------------------- unit scenarios -------------------------- *)

let trace_of ~m events = Trace.of_events ~m events
let crash ~machine ~time = { Fault.machine; time; kind = Fault.Crash }

let crash_redispatch () =
  (* Two tasks of 4 on two machines, both fully replicated. Healthy:
     t0 on m0, t1 on m1, makespan 4. Machine 0 crashes at 2: t0's two
     units of work are lost; m1 is busy with t1 until 4, then re-runs
     t0 from scratch, 4..8. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0; 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = Array.init 2 (fun _ -> Bitset.full 2) in
  let outcome =
    Engine.run_faulty instance realization
      ~faults:(trace_of ~m:2 [ crash ~machine:0 ~time:2.0 ])
      ~placement ~order:(submission_order 2)
  in
  checki "all tasks complete" 2 outcome.Engine.completed;
  close "makespan doubles" 8.0 outcome.Engine.makespan;
  close "two units lost" 2.0 outcome.Engine.wasted;
  let e0 = finished_entry outcome 0 in
  checki "t0 re-dispatched to the survivor" 1 e0.Schedule.machine;
  close "t0 restarts after t1" 4.0 e0.Schedule.start;
  close "t0 re-runs from scratch" 8.0 e0.Schedule.finish

let stranded_singleton () =
  (* t0's data lives only on machine 0; t1 is replicated. The crash
     strands t0 but t1 still finishes — reported, not raised. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0; 3.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.singleton 2 0; Bitset.full 2 |] in
  let outcome =
    Engine.run_faulty instance realization
      ~faults:(trace_of ~m:2 [ crash ~machine:0 ~time:1.0 ])
      ~placement ~order:(submission_order 2)
  in
  checki "one survivor" 1 outcome.Engine.completed;
  Alcotest.(check (list int)) "t0 stranded" [ 0 ] outcome.Engine.stranded;
  checkb "stranded fate" true (outcome.Engine.fates.(0) = Engine.Stranded);
  close "survivor makespan" 3.0 outcome.Engine.makespan;
  close "t0's first unit was lost" 1.0 outcome.Engine.wasted;
  checkb "no full schedule" true
    (Engine.outcome_schedule ~m:2 outcome = None)

let outage_kills_and_restarts () =
  (* One task of 4 on one machine. An outage at 2 (until 5) kills the
     copy — the work is not checkpointed — and the machine restarts it
     from scratch on recovery: 5..9. *)
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 1 |] in
  let outcome =
    Engine.run_faulty instance realization
      ~faults:
        (trace_of ~m:1
           [ { Fault.machine = 0; time = 2.0; kind = Fault.Outage 5.0 } ])
      ~placement ~order:(submission_order 1)
  in
  checki "completes after recovery" 1 outcome.Engine.completed;
  close "restart from scratch at 5" 9.0 outcome.Engine.makespan;
  close "pre-outage work lost" 2.0 outcome.Engine.wasted;
  let e = finished_entry outcome 0 in
  close "started on recovery" 5.0 e.Schedule.start

let slowdown_stretches_remaining () =
  (* One task of 4 started at 0; the machine slows to half speed at 2.
     Two units done, two remaining at speed 0.5: finish = 2 + 2/0.5. *)
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 1 |] in
  let outcome =
    Engine.run_faulty instance realization
      ~faults:
        (trace_of ~m:1
           [ { Fault.machine = 0; time = 2.0; kind = Fault.Slowdown 0.5 } ])
      ~placement ~order:(submission_order 1)
  in
  close "remaining work stretched" 6.0 outcome.Engine.makespan;
  close "nothing wasted" 0.0 outcome.Engine.wasted;
  checki "still completes" 1 outcome.Engine.completed

let speedup_compresses_remaining () =
  (* Slowdown factors above 1 are speed-ups: one task of 4 started at 0,
     the machine doubles its speed at 2. Two units done, two remaining
     at speed 2: finish = 2 + 2/2. *)
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 1 |] in
  let outcome =
    Engine.run_faulty instance realization
      ~faults:
        (trace_of ~m:1
           [ { Fault.machine = 0; time = 2.0; kind = Fault.Slowdown 2.0 } ])
      ~placement ~order:(submission_order 1)
  in
  close "remaining work compressed" 3.0 outcome.Engine.makespan;
  checki "still completes" 1 outcome.Engine.completed;
  (* pp renders factors above 1 as a speedup. *)
  let rendered =
    Format.asprintf "%a" Fault.pp
      { Fault.machine = 0; time = 2.0; kind = Fault.Slowdown 2.0 }
  in
  checkb "pp says speedup" true
    (String.length rendered >= 7 && String.sub rendered 0 7 = "speedup")

let rejects_bad_slowdown_factor () =
  List.iter
    (fun (name, factor) ->
      checkb name true
        (try
           ignore
             (trace_of ~m:1
                [ { Fault.machine = 0; time = 0.0; kind = Fault.Slowdown factor } ]);
           false
         with Invalid_argument _ -> true))
    [
      ("zero factor", 0.0);
      ("negative factor", -0.5);
      ("nan factor", Float.nan);
      ("infinite factor", Float.infinity);
    ];
  (* Any finite positive factor is accepted, above 1 included. *)
  List.iter
    (fun factor ->
      ignore
        (trace_of ~m:1
           [ { Fault.machine = 0; time = 0.0; kind = Fault.Slowdown factor } ]))
    [ 0.25; 1.0; 3.5 ]

let revelation_trace () =
  (* A revelation is one Slowdown per machine whose factor moves; exact
     factor-1 entries are skipped so a degenerate revelation is the
     empty trace (and replays bit-for-bit as no trace at all). *)
  let t = Trace.revelation ~m:3 ~at:2.5 [| 0.5; 1.0; 2.0 |] in
  let events = Trace.events t in
  checki "factor-1 machines emit nothing" 2 (List.length events);
  List.iter
    (fun e ->
      close "revealed at the given instant" 2.5 e.Fault.time;
      checkb "is a slowdown" true
        (match e.Fault.kind with Fault.Slowdown _ -> true | _ -> false))
    events;
  checkb "degenerate revelation is empty" true
    (Trace.events (Trace.revelation ~m:2 ~at:1.0 [| 1.0; 1.0 |]) = []);
  checkb "wrong machine count rejected" true
    (try
       ignore (Trace.revelation ~m:3 ~at:1.0 [| 1.0 |]);
       false
     with Invalid_argument _ -> true);
  checkb "bad factor rejected" true
    (try
       ignore (Trace.revelation ~m:1 ~at:1.0 [| 0.0 |]);
       false
     with Invalid_argument _ -> true)

let random_slowdowns_above_one () =
  (* The generalized factor range: any finite positive band, straddling
     1 included. *)
  let rng = Rng.create ~seed:11 () in
  let t = Trace.random_slowdowns rng ~m:6 ~p:1.0 ~horizon:4.0 ~factor:(0.5, 2.0) in
  List.iter
    (fun e ->
      match e.Fault.kind with
      | Fault.Slowdown f -> checkb "in band" true (f >= 0.5 && f <= 2.0)
      | _ -> Alcotest.fail "not a slowdown")
    (Trace.events t);
  checkb "inverted range rejected" true
    (try
       ignore
         (Trace.random_slowdowns rng ~m:2 ~p:0.5 ~horizon:1.0 ~factor:(2.0, 0.5));
       false
     with Invalid_argument _ -> true)

let speculation_backup_wins () =
  (* One task, estimate 2 but actual 8, on two machines. Machine 0 is a
     congenital straggler (quarter speed from t=0): the primary copy
     would finish at 32. With beta=2 a backup is allowed from
     t = 2*est/base_speed = 4; machine 1 is idle and holds the data, so
     the backup runs 4..12 and wins; the primary is cancelled at 12,
     its 12 wall-clock units counted as waste. *)
  let instance = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 4.0) [| 2.0 |] in
  let realization = Realization.of_actuals instance [| 8.0 |] in
  let placement = [| Bitset.full 2 |] in
  let faults =
    trace_of ~m:2 [ { Fault.machine = 0; time = 0.0; kind = Fault.Slowdown 0.25 } ]
  in
  let no_spec =
    Engine.run_faulty instance realization ~faults ~placement
      ~order:(submission_order 1)
  in
  close "without speculation the straggler limps home" 32.0
    no_spec.Engine.makespan;
  let outcome, events =
    Engine.run_faulty_traced ~speculation:2.0 instance realization ~faults
      ~placement ~order:(submission_order 1)
  in
  checki "completes" 1 outcome.Engine.completed;
  let e = finished_entry outcome 0 in
  checki "backup copy wins" 1 e.Schedule.machine;
  close "backup starts when armed" 4.0 e.Schedule.start;
  close "backup finish" 12.0 e.Schedule.finish;
  close "makespan is the winner's" 12.0 outcome.Engine.makespan;
  close "loser's wall-clock is waste" 12.0 outcome.Engine.wasted;
  checkb "primary was cancelled" true
    (List.exists
       (function Engine.Cancelled { machine = 0; _ } -> true | _ -> false)
       events)

let speculation_needs_a_holder () =
  (* Singleton placement: nobody else holds the data, so speculation
     never fires even when armed. *)
  let instance = Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha 4.0) [| 2.0 |] in
  let realization = Realization.of_actuals instance [| 8.0 |] in
  let placement = [| Bitset.singleton 2 0 |] in
  let outcome =
    Engine.run_faulty ~speculation:2.0 instance realization
      ~faults:(Trace.empty ~m:2) ~placement ~order:(submission_order 1)
  in
  close "no backup possible" 8.0 outcome.Engine.makespan;
  close "no waste" 0.0 outcome.Engine.wasted

(* -------------------- tie-breaks at equal times --------------------- *)

(* Faults sort before completions at the same timestamp (event class 0
   vs 1): a copy finishing exactly when its machine's outage begins is
   killed, not completed — and killed exactly once. *)
let outage_at_completion_time () =
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 1 |] in
  let outcome, events =
    Engine.run_faulty_traced instance realization
      ~faults:
        (trace_of ~m:1
           [ { Fault.machine = 0; time = 4.0; kind = Fault.Outage 6.0 } ])
      ~placement ~order:(submission_order 1)
  in
  checki "killed exactly once" 1
    (List.length
       (List.filter
          (function Engine.Killed _ -> true | _ -> false)
          events));
  close "the whole attempt counted as waste, once" 4.0 outcome.Engine.wasted;
  close "restart after the outage" 10.0 outcome.Engine.makespan

(* Two faults on the same machine at the same instant: the first kills
   the running copy, the second finds nothing left to kill — the copy's
   work is wasted once, whatever the trace order. *)
let simultaneous_crash_and_outage order_name evs () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 2 |] in
  let outcome, events =
    Engine.run_faulty_traced instance realization ~faults:(trace_of ~m:2 evs)
      ~placement ~order:(submission_order 1)
  in
  checki (order_name ^ ": killed exactly once") 1
    (List.length
       (List.filter
          (function Engine.Killed _ -> true | _ -> false)
          events));
  close (order_name ^ ": wasted once, not twice") 2.0 outcome.Engine.wasted;
  checki (order_name ^ ": completes on the survivor") 1
    outcome.Engine.completed;
  let e = finished_entry outcome 0 in
  checki (order_name ^ ": survivor machine") 1 e.Schedule.machine;
  close (order_name ^ ": redispatch at the fault instant") 2.0
    e.Schedule.start

let crash_then_outage () =
  simultaneous_crash_and_outage "crash-first"
    [
      crash ~machine:0 ~time:2.0;
      { Fault.machine = 0; time = 2.0; kind = Fault.Outage 5.0 };
    ]
    ()

let outage_then_crash () =
  simultaneous_crash_and_outage "outage-first"
    [
      { Fault.machine = 0; time = 2.0; kind = Fault.Outage 5.0 };
      crash ~machine:0 ~time:2.0;
    ]
    ()

(* ------------------------ qcheck properties ------------------------ *)

(* Random scenario: n tasks, m machines, ring placement with k replicas,
   crash probability p. The instance, realization, and trace all derive
   from one integer seed. *)
let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario_print (n, m, k, p, seed) =
  Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j -> Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults = Trace.random_crashes rng ~m ~p ~horizon in
  (instance, realization, placement, order, faults)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

(* The golden test: an empty trace reproduces [run] bit-for-bit — same
   machines, same start/finish floats, zero waste. *)
let prop_empty_trace_golden =
  QCheck.Test.make ~name:"run_faulty on the empty trace equals run exactly"
    ~count:500 scenario (fun ((n, m, _, _, seed) as s) ->
      let instance, realization, placement, order, _ = build s in
      let speeds =
        if seed mod 2 = 0 then None
        else
          let rng = Rng.create ~seed:(seed + 1) () in
          Some (Array.init m (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:2.0))
      in
      let reference =
        Engine.run ?speeds instance realization ~placement ~order
      in
      let outcome =
        Engine.run_faulty ?speeds instance realization
          ~faults:(Trace.empty ~m) ~placement ~order
      in
      outcome.Engine.completed = n
      && outcome.Engine.stranded = []
      && outcome.Engine.wasted = 0.0
      && outcome.Engine.makespan = Schedule.makespan reference
      && Array.for_all
           (fun j ->
             entries_equal (finished_entry outcome j) (Schedule.entry reference j))
           (Array.init n (fun j -> j)))

(* No completed work on a dead machine: every surviving entry fits
   before its machine's crash and inside no outage window. *)
let prop_no_work_on_dead_machines =
  QCheck.Test.make ~name:"completed tasks never ran on a crashed machine"
    ~count:500 scenario (fun s ->
      let instance, realization, placement, order, faults = build s in
      let outcome =
        Engine.run_faulty instance realization ~faults ~placement ~order
      in
      ignore instance;
      Array.for_all
        (function
          | Engine.Stranded -> true
          | Engine.Finished e ->
              (match Trace.crash_time faults e.Schedule.machine with
              | Some t -> e.Schedule.finish <= t
              | None -> true)
              && List.for_all
                   (fun (from, until) ->
                     e.Schedule.finish <= from || e.Schedule.start >= until)
                   (Trace.outages faults e.Schedule.machine))
        outcome.Engine.fates)

let prop_locality =
  QCheck.Test.make ~name:"completed tasks ran on a data holder" ~count:500
    scenario (fun s ->
      let instance, realization, placement, order, faults = build s in
      let outcome =
        Engine.run_faulty instance realization ~faults ~placement ~order
      in
      Array.for_all (fun j ->
          match outcome.Engine.fates.(j) with
          | Engine.Stranded -> true
          | Engine.Finished e -> Bitset.mem placement.(j) e.Schedule.machine)
        (Array.init (Instance.n instance) (fun j -> j)))

(* Liveness: a task with a holder that never crashes always finishes,
   and a crash-only trace never strands work below the actual durations
   (the winning copy ran uninterrupted). *)
let prop_surviving_holder_completes =
  QCheck.Test.make ~name:"a task with a never-crashed holder completes"
    ~count:500 scenario (fun s ->
      let instance, realization, placement, order, faults = build s in
      let outcome =
        Engine.run_faulty instance realization ~faults ~placement ~order
      in
      let crashed = Trace.crashed faults in
      Array.for_all (fun j ->
          let has_survivor =
            List.exists
              (fun i -> not (List.mem i crashed))
              (Bitset.to_list placement.(j))
          in
          match outcome.Engine.fates.(j) with
          | Engine.Finished e ->
              abs_float
                (e.Schedule.finish -. e.Schedule.start
                -. Realization.actual realization j)
              < 1e-9
          | Engine.Stranded -> not has_survivor)
        (Array.init (Instance.n instance) (fun j -> j)))

let prop_full_replication_survives =
  QCheck.Test.make
    ~name:"full replication + one survivor = 100% completion" ~count:300
    scenario (fun (n, m, _, p, seed) ->
      let instance, realization, _, order, faults =
        build (n, m, m, p, seed)
      in
      let placement = Array.init n (fun _ -> Bitset.full m) in
      let outcome =
        Engine.run_faulty instance realization ~faults ~placement ~order
      in
      outcome.Engine.completed + List.length outcome.Engine.stranded = n
      && (List.length (Trace.crashed faults) >= m
         || (outcome.Engine.stranded = [] && outcome.Engine.completed = n)))

let prop_deterministic =
  QCheck.Test.make ~name:"run_faulty is deterministic" ~count:200 scenario
    (fun s ->
      let instance, realization, placement, order, faults = build s in
      let speculation = 1.5 in
      let a =
        Engine.run_faulty ~speculation instance realization ~faults ~placement
          ~order
      in
      let b =
        Engine.run_faulty ~speculation instance realization ~faults ~placement
          ~order
      in
      a.Engine.makespan = b.Engine.makespan
      && a.Engine.wasted = b.Engine.wasted
      && a.Engine.stranded = b.Engine.stranded
      && Array.for_all2
           (fun x y ->
             match (x, y) with
             | Engine.Stranded, Engine.Stranded -> true
             | Engine.Finished e, Engine.Finished f -> entries_equal e f
             | _ -> false)
           a.Engine.fates b.Engine.fates)

(* Speculation can only help the makespan on slowdown traces (crash-free:
   the task set completing is identical), and all waste is accounted. *)
let prop_speculation_never_hurts =
  QCheck.Test.make
    ~name:"speculation never worsens the makespan under slowdowns" ~count:300
    scenario (fun (n, m, k, p, seed) ->
      let instance, realization, placement, order, _ =
        build (n, m, k, p, seed)
      in
      let faults =
        Trace.random_slowdowns
          (Rng.create ~seed:(seed + 2) ())
          ~m ~p ~horizon:(2.0 *. Realization.total realization)
          ~factor:(0.2, 0.9)
      in
      let plain =
        Engine.run_faulty instance realization ~faults ~placement ~order
      in
      let spec =
        Engine.run_faulty ~speculation:1.2 instance realization ~faults
          ~placement ~order
      in
      spec.Engine.completed = n
      && plain.Engine.completed = n
      && plain.Engine.wasted = 0.0
      && spec.Engine.makespan <= plain.Engine.makespan +. 1e-9)

(* --------------- profile-driven trace generation ------------------- *)

module Failure = Usched_model.Failure

let profile_scenario =
  QCheck.make
    ~print:(fun (m, seed) -> Printf.sprintf "m=%d seed=%d" m seed)
    QCheck.Gen.(
      let* m = int_range 1 6 in
      let* seed = int_bound 1_000_000 in
      return (m, seed))

(* Statistical convergence: over many seeded traces, each machine's
   empirical crash frequency matches its profile probability. The
   tolerance is 5 binomial standard deviations plus slack, so a correct
   generator fails with probability ~1e-6 per machine. *)
let prop_profile_frequencies =
  QCheck.Test.make
    ~name:"profile_crashes frequencies converge to the profile" ~count:20
    profile_scenario (fun (m, seed) ->
      let rng = Rng.create ~seed () in
      let profile =
        Failure.make (Array.init m (fun _ -> Rng.float_range rng ~lo:0.0 ~hi:1.0))
      in
      let trials = 1500 in
      let hits = Array.make m 0 in
      for _ = 1 to trials do
        let faults =
          Trace.profile_crashes (Rng.split rng) ~profile ~horizon:10.0
        in
        List.iter (fun i -> hits.(i) <- hits.(i) + 1) (Trace.crashed faults)
      done;
      Array.for_all
        (fun i ->
          let p = Failure.p profile i in
          let freq = float_of_int hits.(i) /. float_of_int trials in
          let sigma = sqrt (p *. (1.0 -. p) /. float_of_int trials) in
          abs_float (freq -. p) <= (5.0 *. sigma) +. 0.01)
        (Array.init m (fun i -> i)))

(* Structure: crashes land inside [0, horizon), on valid machines, at
   most one per machine, and p=0 / p=1 machines never / always crash. *)
let prop_profile_structure =
  QCheck.Test.make ~name:"profile_crashes respects horizon and extremes"
    ~count:200 profile_scenario (fun (m, seed) ->
      let rng = Rng.create ~seed () in
      let p =
        Array.init m (fun i ->
            if i mod 3 = 0 then 0.0
            else if i mod 3 = 1 then 1.0
            else Rng.float_range rng ~lo:0.0 ~hi:1.0)
      in
      let profile = Failure.make p in
      let horizon = 7.5 in
      let faults = Trace.profile_crashes rng ~profile ~horizon in
      let crashed = Trace.crashed faults in
      List.length (List.sort_uniq Int.compare crashed) = List.length crashed
      && List.for_all
           (fun i ->
             i >= 0 && i < m
             && p.(i) > 0.0
             &&
             match Trace.crash_time faults i with
             | Some t -> t >= 0.0 && t < horizon
             | None -> false)
           crashed
      && Array.for_all
           (fun i -> p.(i) < 1.0 || List.mem i crashed)
           (Array.init m (fun i -> i)))

let () =
  Alcotest.run "faults"
    [
      ( "scenarios",
        [
          Alcotest.test_case "crash kills and re-dispatches" `Quick
            crash_redispatch;
          Alcotest.test_case "last-replica crash strands the task" `Quick
            stranded_singleton;
          Alcotest.test_case "outage kills and restarts from scratch" `Quick
            outage_kills_and_restarts;
          Alcotest.test_case "slowdown stretches remaining work" `Quick
            slowdown_stretches_remaining;
          Alcotest.test_case "speedup compresses remaining work" `Quick
            speedup_compresses_remaining;
          Alcotest.test_case "slowdown factor validation" `Quick
            rejects_bad_slowdown_factor;
          Alcotest.test_case "revelation trace" `Quick revelation_trace;
          Alcotest.test_case "slowdown factors above one" `Quick
            random_slowdowns_above_one;
          Alcotest.test_case "speculative backup beats the straggler" `Quick
            speculation_backup_wins;
          Alcotest.test_case "speculation needs a second data holder" `Quick
            speculation_needs_a_holder;
        ] );
      ( "tie-breaks",
        [
          Alcotest.test_case "outage at the exact completion time kills once"
            `Quick outage_at_completion_time;
          Alcotest.test_case "crash and outage at the same instant (crash first)"
            `Quick crash_then_outage;
          Alcotest.test_case "crash and outage at the same instant (outage first)"
            `Quick outage_then_crash;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_empty_trace_golden;
            prop_no_work_on_dead_machines;
            prop_locality;
            prop_surviving_holder_completes;
            prop_full_replication_survives;
            prop_deterministic;
            prop_speculation_never_hurts;
          ] );
      ( "profiles",
        List.map QCheck_alcotest.to_alcotest
          [ prop_profile_frequencies; prop_profile_structure ] );
    ]
