(* Tests for the selective-replication extension. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let close = Alcotest.(check (float 1e-9))

let instance () =
  Instance.of_ests ~m:3 ~alpha:(Uncertainty.alpha 2.0)
    [| 10.0; 8.0; 1.0; 1.0; 1.0; 1.0; 6.0 |]

let replicates_largest_estimates () =
  let p = Core.Selective.placement ~count:2 (instance ()) in
  (* The two largest estimates are tasks 0 and 1. *)
  checki "task 0 everywhere" 3 (Core.Placement.replication p 0);
  checki "task 1 everywhere" 3 (Core.Placement.replication p 1);
  checki "task 6 pinned" 1 (Core.Placement.replication p 6);
  checki "task 2 pinned" 1 (Core.Placement.replication p 2)

let count_clamped () =
  let p = Core.Selective.placement ~count:100 (instance ()) in
  checki "all replicated" 3 (Core.Placement.max_replication p);
  let p0 = Core.Selective.placement ~count:(-5) (instance ()) in
  checki "none replicated" 1 (Core.Placement.max_replication p0)

let zero_count_equals_lpt_no_choice () =
  let inst = instance () in
  let rng = Rng.create ~seed:1 () in
  let realization = Realization.uniform_factor inst rng in
  close "same makespan"
    (Core.Two_phase.makespan Core.No_replication.lpt_no_choice inst realization)
    (Core.Two_phase.makespan (Core.Selective.algorithm ~count:0) inst realization)

let full_count_equals_no_restriction () =
  let inst = instance () in
  let rng = Rng.create ~seed:2 () in
  let realization = Realization.uniform_factor inst rng in
  close "same makespan"
    (Core.Two_phase.makespan Core.Full_replication.lpt_no_restriction inst
       realization)
    (Core.Two_phase.makespan (Core.Selective.algorithm ~count:7) inst realization)

let schedules_valid_at_every_count () =
  let inst = instance () in
  let rng = Rng.create ~seed:3 () in
  for count = 0 to 7 do
    let realization = Realization.extremes ~p_high:0.4 inst rng in
    let algo = Core.Selective.algorithm ~count in
    let placement, schedule = Core.Two_phase.run_full algo inst realization in
    checkb
      (Printf.sprintf "count %d valid" count)
      true
      (Schedule.validate ~placement:(Core.Placement.sets placement) inst
         realization schedule
      = [])
  done

let memory_grows_with_count () =
  let inst = instance () in
  let mem count =
    Core.Placement.total_replicas (Core.Selective.placement ~count inst)
  in
  checkb "monotone replica count" true (mem 0 < mem 2 && mem 2 < mem 7)

let () =
  Alcotest.run "selective"
    [
      ( "unit",
        [
          Alcotest.test_case "replicates largest" `Quick replicates_largest_estimates;
          Alcotest.test_case "count clamped" `Quick count_clamped;
          Alcotest.test_case "count=0 = LPT-No Choice" `Quick
            zero_count_equals_lpt_no_choice;
          Alcotest.test_case "count=n = LPT-No Restriction" `Quick
            full_count_equals_no_restriction;
          Alcotest.test_case "valid schedules" `Quick schedules_valid_at_every_count;
          Alcotest.test_case "memory monotone" `Quick memory_grows_with_count;
        ] );
    ]
