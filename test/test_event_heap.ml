(* The SoA 4-ary event heap under the desim engine: unit behaviour,
   equivalence with the binary [Pqueue] under the engine's total event
   order (the refactor's claim that arity and layout cannot change the
   pop sequence), the alloc/sift_up direct-lane push pattern, and the
   no-retention-after-drain guarantee ported from the Pqueue suite. *)

module Event_core = Usched_desim.Event_core
module Event_heap = Usched_desim.Event_heap
module Pqueue = Usched_desim.Pqueue
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------ unit -------------------------------- *)

let empty_behaviour () =
  let q = Event_core.create ~dummy:(-1) () in
  checkb "is_empty" true (Event_heap.is_empty q);
  checki "length 0" 0 (Event_core.length q);
  Alcotest.check_raises "min_time raises"
    (Invalid_argument "Event_heap.min_time: empty heap") (fun () ->
      ignore (Event_heap.min_time q));
  Alcotest.check_raises "remove_min raises"
    (Invalid_argument "Event_heap.remove_min: empty heap") (fun () ->
      Event_heap.remove_min q)

let aux_lanes_round_trip () =
  let q = Event_core.create ~dummy:(-1) () in
  Event_core.push_aux q ~time:2.0 ~machine:1 ~cls:Event_core.cls_arrival
    ~aux:17 ~aux2:23 5;
  Event_core.push q ~time:1.0 ~machine:0 ~cls:Event_core.cls_fault 9;
  (* plain push zeroes the aux words *)
  checki "root aux zeroed by push" 0 (Event_heap.min_aux q);
  checki "root aux2 zeroed by push" 0 (Event_heap.min_aux2 q);
  checki "root payload" 9 (Event_heap.min_payload q);
  Event_heap.remove_min q;
  checki "aux survives sifting" 17 (Event_heap.min_aux q);
  checki "aux2 survives sifting" 23 (Event_heap.min_aux2 q);
  checki "payload survives sifting" 5 (Event_heap.min_payload q)

(* The engine's hot-loop push pattern — alloc, direct lane writes,
   sift_up — must be observationally the convenience [push]. *)
let alloc_pattern_is_push () =
  let seed = 1234 in
  let stream rng =
    Array.init 200 (fun k ->
        ( Rng.float_range rng ~lo:0.0 ~hi:4.0,
          Rng.int rng 5,
          Rng.int rng 4,
          k ))
  in
  let events = stream (Rng.create ~seed ()) in
  let via_push = Event_core.create ~dummy:(-1) () in
  let via_alloc = Event_core.create ~dummy:(-1) () in
  Array.iter
    (fun (time, machine, cls, payload) ->
      Event_core.push via_push ~time ~machine ~cls payload;
      let s = Event_heap.alloc via_alloc in
      via_alloc.Event_heap.times.(s) <- time;
      via_alloc.Event_heap.machines.(s) <- machine;
      via_alloc.Event_heap.classes.(s) <- cls;
      via_alloc.Event_heap.payloads.(s) <- payload;
      Event_heap.sift_up via_alloc s)
    events;
  while not (Event_heap.is_empty via_push) do
    checki "same payload at the root" (Event_heap.min_payload via_push)
      (Event_heap.min_payload via_alloc);
    Event_heap.remove_min via_push;
    Event_heap.remove_min via_alloc
  done;
  checkb "both drained" true (Event_heap.is_empty via_alloc)

(* Ported from the Pqueue suite: a drained heap must not keep popped
   payloads reachable. The engine holds one heap for a whole run, so a
   leaked slot would pin event payloads for the run's lifetime; the
   [dummy] overwrite on [remove_min] is what prevents it. *)
let no_retention_after_drain () =
  let dummy = (-1, ref (-1)) in
  let q = Event_core.create ~dummy () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let boxed = (i, ref i) in
    Weak.set weak i (Some boxed);
    Event_core.push q ~time:(float_of_int (i mod 7)) ~machine:(i mod 3)
      ~cls:(i mod 4) boxed
  done;
  (* Grow, shrink and re-grow so vacated-slot aliasing is exercised. *)
  for _ = 1 to n / 2 do
    Event_heap.remove_min q
  done;
  for i = n to n + 7 do
    Event_core.push q ~time:0.5 ~machine:0 ~cls:1 (i, ref i)
  done;
  while not (Event_heap.is_empty q) do
    Event_heap.remove_min q
  done;
  Gc.full_major ();
  let leaked = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr leaked
  done;
  checki "no payload survives a full drain" 0 !leaked;
  (* The heap stays usable, with capacity retained. *)
  Event_core.push q ~time:1.0 ~machine:0 ~cls:0 (42, ref 42);
  checki "reusable" 42 (fst (Event_heap.min_payload q))

(* --------------------- equivalence with Pqueue ---------------------- *)

(* The refactor's ordering claim: under the engine's total event order
   (time, machine, cls, seq) — seq unique per push — the 4-ary SoA heap
   pops the same sequence as the old binary Pqueue, because the order is
   total and both are exact priority queues. Ties on (time, machine,
   cls) are forced by drawing from small value sets. *)
let stream_gen =
  QCheck.Gen.(
    let* len = int_range 0 120 in
    let* seed = int_bound 1_000_000 in
    return (len, seed))

let stream_scenario =
  QCheck.make
    ~print:(fun (len, seed) -> Printf.sprintf "len=%d seed=%d" len seed)
    stream_gen

let random_event rng k =
  {
    Event_core.time = float_of_int (Rng.int rng 6) /. 2.0;
    machine = Rng.int rng 4 - 1;
    (* -1 is the streaming engine's virtual source machine *)
    cls = Rng.int rng 4;
    seq = k;
    payload = k;
  }

let prop_drain_matches_pqueue =
  QCheck.Test.make ~name:"drain pops the Pqueue/compare_event order"
    ~count:400 stream_scenario (fun (len, seed) ->
      let rng = Rng.create ~seed () in
      let events = Array.init len (random_event rng) in
      let heap = Event_core.create ~dummy:(-1) () in
      let pq = Pqueue.create ~compare:Event_core.compare_event () in
      Array.iter
        (fun e ->
          Event_core.push heap ~time:e.Event_core.time
            ~machine:e.Event_core.machine ~cls:e.Event_core.cls
            e.Event_core.payload;
          Pqueue.push pq e)
        events;
      let popped = ref [] in
      Event_core.drain heap ~handle:(fun ~time ~machine payload ->
          popped := (time, machine, payload) :: !popped);
      let expected =
        List.map
          (fun e ->
            (e.Event_core.time, e.Event_core.machine, e.Event_core.payload))
          (Pqueue.drain pq)
      in
      List.rev !popped = expected)

(* Interleaved push/pop against the same model: handlers push while the
   queue drains in the engine, so equivalence on mixed histories — not
   just push-all-then-drain — is the property that matters. *)
let prop_interleaved_matches_pqueue =
  QCheck.Test.make ~name:"interleaved push/pop matches the Pqueue model"
    ~count:400 stream_scenario (fun (len, seed) ->
      let rng = Rng.create ~seed () in
      let heap = Event_core.create ~dummy:(-1) () in
      let pq = Pqueue.create ~compare:Event_core.compare_event () in
      let next = ref 0 in
      let ok = ref true in
      for _ = 1 to len do
        if Rng.bernoulli rng ~p:0.6 || Event_heap.is_empty heap then begin
          let e = random_event rng !next in
          incr next;
          Event_core.push heap ~time:e.Event_core.time
            ~machine:e.Event_core.machine ~cls:e.Event_core.cls
            e.Event_core.payload;
          Pqueue.push pq e
        end
        else begin
          let e = Pqueue.pop_exn pq in
          if
            Event_heap.min_time heap <> e.Event_core.time
            || Event_heap.min_machine heap <> e.Event_core.machine
            || Event_heap.min_cls heap <> e.Event_core.cls
            || Event_heap.min_payload heap <> e.Event_core.payload
          then ok := false;
          Event_heap.remove_min heap
        end
      done;
      !ok && Event_core.length heap = Pqueue.length pq)

(* ------------------------------ suite ------------------------------- *)

let () =
  Alcotest.run "event_heap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick empty_behaviour;
          Alcotest.test_case "aux lanes" `Quick aux_lanes_round_trip;
          Alcotest.test_case "alloc pattern = push" `Quick
            alloc_pattern_is_push;
          Alcotest.test_case "no retention" `Quick no_retention_after_drain;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_drain_matches_pqueue; prop_interleaved_matches_pqueue ] );
    ]
