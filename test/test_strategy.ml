(* Tests for the strategy catalog: spec validation, the to_string /
   of_string round-trip grammar, the registry, and the golden
   equivalence property pinning the refactor — every spec builds an
   algorithm bit-for-bit identical to the pre-catalog inline
   construction. *)

module Core = Usched_core
module Strategy = Usched_core.Strategy
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------- spec generator -------------------------- *)

(* Valid specs only; m-dependent parameters stay in range for the given
   machine and task counts so [build] and phase 1 always succeed.
   [Memory_budget] gets budget >= n so every unit-size workload fits. *)
let spec_gen ~n ~m =
  QCheck.Gen.(
    let speeds k =
      array_size (return m)
        (map (fun i -> [| 0.5; 1.0; 2.0; 4.0 |].(i)) (int_bound 3))
      |> map (fun speeds -> Strategy.Uniform { variant = k; speeds })
    in
    let order = map (fun b -> if b then Strategy.Lpt else Strategy.Ls) bool in
    let pos_k = int_range 1 m in
    let delta = float_range 0.1 4.0 in
    oneof
      [
        map (fun o -> Strategy.No_replication o) order;
        map (fun o -> Strategy.Full_replication o) order;
        (let* o = order in
         let* k = pos_k in
         return (Strategy.Group { order = o; k }));
        map (fun k -> Strategy.Budgeted k) pos_k;
        map (fun f -> Strategy.Proportional f) (float_range 0.0 1.0);
        map (fun c -> Strategy.Selective c) (int_range 0 (n + 2));
        map (fun d -> Strategy.Sabo d) delta;
        map (fun d -> Strategy.Abo d) delta;
        map
          (fun b -> Strategy.Memory_budget (float_of_int n +. b))
          (float_range 0.0 20.0);
        (* Targets stay below what the default p=0.05 profile can reach
           even on one machine (loss 0.05^m per task, n tasks), so the
           solver's phase 1 always succeeds; a budget of >= n unit sizes
           never binds but exercises the constrained code path. *)
        (let tmax =
           1.0 -. (float_of_int n *. (0.05 ** float_of_int m))
         in
         let* target = float_range (0.05 *. tmax) (0.9 *. tmax) in
         let* budget =
           oneof
             [
               return None;
               map (fun b -> Some (float_of_int n +. b)) (float_range 0.0 20.0);
             ]
         in
         return (Strategy.Reliability { target; budget }));
        speeds Strategy.U_no_choice;
        speeds Strategy.U_no_restriction;
        (let* k = pos_k in
         speeds (Strategy.U_group k));
      ])

(* -------------------------- round trip ----------------------------- *)

let round_trip =
  QCheck.Test.make ~count:400 ~name:"of_string (to_string s) = Ok s"
    (QCheck.make
       ~print:(fun s -> Strategy.to_string s)
       QCheck.Gen.(
         let* n = int_range 1 16 in
         let* m = int_range 1 8 in
         spec_gen ~n ~m))
    (fun spec ->
      match Strategy.of_string (Strategy.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error _ -> false)

(* Floats that need the %.17g fallback must still round-trip. *)
let awkward_float_round_trip () =
  List.iter
    (fun delta ->
      let spec = Strategy.Sabo delta in
      match Strategy.of_string (Strategy.to_string spec) with
      | Ok spec' -> checkb "exact float round-trip" true (spec' = spec)
      | Error msg -> Alcotest.failf "rejected own printout: %s" msg)
    [ 0.1; 1.0 /. 3.0; 0x1.fffffffffffffp-2; epsilon_float; 1e300 ]

let negative_cases () =
  List.iter
    (fun input ->
      match Strategy.of_string input with
      | Ok spec ->
          Alcotest.failf "%S accepted as %s" input (Strategy.to_string spec)
      | Error msg -> checkb (input ^ " rejected with message") true (msg <> ""))
    [
      "";
      "bogus";
      "help";
      "ls-group";
      "ls-group:";
      "ls-group:x";
      "ls-group:0";
      "ls-group:-2";
      "ls-group:2:junk";
      "group";
      "group:0";
      "lpt-no-choice:3";
      "budgeted:0";
      "budgeted:1.5";
      "selective:x";
      "selective:-1";
      "proportional:1.5";
      "proportional:nan";
      "sabo:nan";
      "sabo:-1";
      "sabo:0";
      "sabo:inf";
      "abo:nan";
      "memory:-2";
      "memory:0";
      "memory";
      "uniform-lpt-no-choice:";
      "uniform-lpt-no-choice:0,1";
      "uniform-lpt-no-choice:1,nan";
      "uniform-ls-group:2";
      "uniform-ls-group:0:1,1";
      "uniform-ls-group:2:1,junk";
      "reliability";
      "reliability:";
      "reliability:nan";
      "reliability:2.0";
      "reliability:1";
      "reliability:0";
      "reliability:-0.5";
      "reliability:x";
      "reliability:0.9:budget";
      "reliability:0.9:budget:";
      "reliability:0.9:budget:nan";
      "reliability:0.9:budget:-1";
      "reliability:0.9:budget:inf";
      "reliability:0.9:x:1";
      "reliability:0.9:budget:2:extra";
    ]

(* Malformed reliability specs must come back with the family's own
   usage line (the TARGET[:budget:B] grammar), not just a generic
   parse error. *)
let reliability_errors_show_grammar () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (match Strategy.of_string "reliability:0.9:x:1" with
  | Ok _ -> Alcotest.fail "reliability:0.9:x:1 accepted"
  | Error msg ->
      checkb "shape error shows TARGET[:budget:B]" true
        (contains msg "TARGET[:budget:B]"));
  (match Strategy.of_string "reliability:2.0" with
  | Ok _ -> Alcotest.fail "reliability:2.0 accepted"
  | Error msg ->
      checkb "range error names the (0, 1) domain" true
        (contains msg "(0, 1)"));
  match Strategy.of_string "reliability:nan" with
  | Ok _ -> Alcotest.fail "reliability:nan accepted"
  | Error msg -> checkb "NaN rejected" true (contains msg "NaN")

let unknown_name_lists_grammar () =
  match Strategy.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error msg ->
      checkb "error carries the grammar" true
        (let contains hay needle =
           let lh = String.length hay and ln = String.length needle in
           let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
           go 0
         in
         contains msg "ls-group:K" && contains msg "sabo:DELTA")

let unknown_name_suggests () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (match Strategy.of_string "relibility:0.99" with
  | Ok _ -> Alcotest.fail "misspelling accepted"
  | Error msg ->
      checkb "close misspelling gets a hint" true
        (contains msg "did you mean reliability?"));
  (match Strategy.of_string "lpt-no-choise" with
  | Ok _ -> Alcotest.fail "misspelling accepted"
  | Error msg ->
      checkb "hint names the nearest keyword" true
        (contains msg "did you mean lpt-no-choice?"));
  match Strategy.of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error msg ->
      checkb "far-off names get no hint" false (contains msg "did you mean")

let group_alias () =
  checkb "group:4 is ls-group:4" true
    (Strategy.of_string "group:4"
    = Ok (Strategy.Group { order = Strategy.Ls; k = 4 }));
  checks "canonical printing" "ls-group:4"
    (match Strategy.of_string "group:4" with
    | Ok s -> Strategy.to_string s
    | Error e -> e)

(* ------------------------ validation ------------------------------- *)

let smart_constructors_reject () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "group k=0" true (rejects (fun () -> Strategy.group ~order:Ls ~k:0));
  checkb "budgeted k=0" true (rejects (fun () -> Strategy.budgeted ~k:0));
  checkb "selective count=-1" true
    (rejects (fun () -> Strategy.selective ~count:(-1)));
  checkb "sabo nan" true (rejects (fun () -> Strategy.sabo ~delta:Float.nan));
  checkb "sabo -1" true (rejects (fun () -> Strategy.sabo ~delta:(-1.0)));
  checkb "sabo inf" true
    (rejects (fun () -> Strategy.sabo ~delta:Float.infinity));
  checkb "abo nan" true (rejects (fun () -> Strategy.abo ~delta:Float.nan));
  checkb "memory 0" true
    (rejects (fun () -> Strategy.memory_budget ~budget:0.0));
  checkb "proportional 1.5" true
    (rejects (fun () -> Strategy.proportional ~fraction:1.5));
  checkb "uniform empty speeds" true
    (rejects (fun () -> Strategy.uniform ~variant:Strategy.U_no_choice ~speeds:[||]));
  checkb "uniform nan speed" true
    (rejects (fun () ->
         Strategy.uniform ~variant:Strategy.U_no_choice ~speeds:[| 1.0; Float.nan |]));
  checkb "valid sabo accepted" true (Strategy.sabo ~delta:0.5 = Strategy.Sabo 0.5)

let build_rejects_m_mismatch () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "group k > m" true
    (rejects (fun () -> Strategy.build (Strategy.group ~order:Ls ~k:7) ~m:4));
  checkb "speeds length <> m" true
    (rejects (fun () ->
         Strategy.build
           (Strategy.uniform ~variant:Strategy.U_no_choice ~speeds:[| 1.0; 2.0 |])
           ~m:3));
  checkb "uniform group k > m" true
    (rejects (fun () ->
         Strategy.build
           (Strategy.uniform ~variant:(Strategy.U_group 5)
              ~speeds:[| 1.0; 1.0; 1.0 |])
           ~m:3));
  (* The repo's machine_groups supports non-divisor k (uneven groups, a
     documented extension) — build must accept it. *)
  checkb "non-divisor k accepted" true
    (Strategy.build (Strategy.group ~order:Ls ~k:2) ~m:5
     |> fun a -> a.Core.Two_phase.name = "LS-Group(k=2)");
  checkb "check mirrors build" true
    (Strategy.check (Strategy.group ~order:Ls ~k:7) ~m:4 <> Ok ()
    && Strategy.check (Strategy.group ~order:Ls ~k:2) ~m:5 = Ok ())

(* -------------------------- registry ------------------------------- *)

let registry_coverage () =
  checkb "non-empty" true (List.length Strategy.all >= 15);
  let keywords = List.map (fun e -> e.Strategy.keyword) Strategy.all in
  checki "keywords unique"
    (List.length keywords)
    (List.length (List.sort_uniq compare keywords));
  List.iter
    (fun e ->
      checkb (e.Strategy.keyword ^ " has a doc") true (e.Strategy.doc <> "");
      checkb (e.Strategy.keyword ^ " findable") true
        (* physical equality: entries hold closures, so [=] would raise *)
        (match Strategy.find e.Strategy.keyword with
        | Some e' -> e' == e
        | None -> false);
      (* Example specs are valid at several m, build, and round-trip. *)
      List.iter
        (fun m ->
          let spec = e.Strategy.example ~m in
          checkb
            (Printf.sprintf "%s example valid at m=%d" e.Strategy.keyword m)
            true
            (Strategy.validate spec = Ok ());
          let algo = Strategy.build spec ~m in
          checks "name matches built algorithm" algo.Core.Two_phase.name
            (Strategy.name spec);
          checkb "example round-trips" true
            (Strategy.of_string (Strategy.to_string spec) = Ok spec))
        [ 1; 4; 8 ])
    Strategy.all;
  checkb "alias findable" true
    (match Strategy.find "group" with
    | Some e -> e.Strategy.keyword = "ls-group"
    | None -> false);
  checkb "unknown not found" true (Strategy.find "bogus" = None)

let registry_portfolio () =
  (* The derived portfolio reproduces the shape Scenarios hardcoded
     before the catalog: no replication, LS-Group at every proper
     divisor, one budgeted overlap, full replication. *)
  let specs = Strategy.default_portfolio ~m:6 in
  Alcotest.(check (list string))
    "m=6 portfolio"
    [ "lpt-no-choice"; "ls-group:2"; "ls-group:3"; "budgeted:3";
      "lpt-no-restriction" ]
    (List.map Strategy.to_string specs);
  let prime = Strategy.default_portfolio ~m:7 in
  Alcotest.(check (list string))
    "prime m has no group members"
    [ "lpt-no-choice"; "budgeted:3"; "lpt-no-restriction" ]
    (List.map Strategy.to_string prime);
  List.iter
    (fun spec -> checkb "member valid" true (Strategy.check spec ~m:6 = Ok ()))
    specs

(* --------------------- golden equivalence ------------------------- *)

(* The pre-refactor construction, frozen: every call site in
   lib/experiments and bin built algorithms with exactly these module
   entry points before the catalog existed. Strategy.build must agree
   bit for bit. *)
let inline_build spec =
  match spec with
  | Strategy.No_replication Strategy.Lpt -> Core.No_replication.lpt_no_choice
  | Strategy.No_replication Strategy.Ls -> Core.No_replication.ls_no_choice
  | Strategy.Full_replication Strategy.Lpt ->
      Core.Full_replication.lpt_no_restriction
  | Strategy.Full_replication Strategy.Ls ->
      Core.Full_replication.ls_no_restriction
  | Strategy.Group { order = Strategy.Ls; k } -> Core.Group_replication.ls_group ~k
  | Strategy.Group { order = Strategy.Lpt; k } ->
      Core.Group_replication.lpt_group ~k
  | Strategy.Budgeted k -> Core.Budgeted.uniform ~k
  | Strategy.Proportional fraction -> Core.Budgeted.proportional ~fraction
  | Strategy.Selective count -> Core.Selective.algorithm ~count
  | Strategy.Sabo delta -> Core.Sabo.algorithm ~delta
  | Strategy.Abo delta -> Core.Abo.algorithm ~delta
  | Strategy.Memory_budget budget -> Core.Memory_budget.algorithm ~budget
  | Strategy.Reliability { target; budget } ->
      Core.Reliability.algorithm ?budget ~target ()
  | Strategy.Uniform { variant = Strategy.U_no_choice; speeds } ->
      Core.Uniform.lpt_no_choice ~speeds
  | Strategy.Uniform { variant = Strategy.U_no_restriction; speeds } ->
      Core.Uniform.lpt_no_restriction ~speeds
  | Strategy.Uniform { variant = Strategy.U_group k; speeds } ->
      Core.Uniform.ls_group ~speeds ~k
  | Strategy.Speed_robust { k } -> Core.Speed_robust.algorithm ~k
  | Strategy.Zone_group k -> Core.Zone_placement.zone_group ~k
  | Strategy.Local_budget budget -> Core.Zone_placement.local_budget ~budget

let golden_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 6 in
    let* spec = spec_gen ~n ~m in
    let* alpha = float_range 1.0 2.5 in
    let* ests = array_size (return n) (float_range 0.1 10.0) in
    let* extreme = bool in
    let* seed = int_bound 1_000_000 in
    return (m, spec, alpha, ests, extreme, seed))

let golden_print (m, spec, alpha, ests, extreme, seed) =
  Printf.sprintf "m=%d spec=%s alpha=%.3f ests=[%s] extreme=%b seed=%d" m
    (Strategy.to_string spec) alpha
    (String.concat ";" (Array.to_list (Array.map string_of_float ests)))
    extreme seed

let same_schedule a b n =
  let rec go j =
    j >= n
    ||
    let ea = Schedule.entry a j and eb = Schedule.entry b j in
    ea.Schedule.machine = eb.Schedule.machine
    && ea.Schedule.start = eb.Schedule.start
    && ea.Schedule.finish = eb.Schedule.finish
    && go (j + 1)
  in
  go 0

let golden_equivalence =
  QCheck.Test.make ~count:300
    ~name:"Strategy.build = pre-refactor inline construction (bit-for-bit)"
    (QCheck.make ~print:golden_print golden_gen)
    (fun (m, spec, alpha, ests, extreme, seed) ->
      (* Unit sizes keep every generated memory budget (>= n) feasible. *)
      let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha) ests in
      let rng = Rng.create ~seed () in
      let realization =
        if extreme then Realization.extremes ~p_high:0.5 instance rng
        else Realization.uniform_factor instance rng
      in
      let via_spec = Strategy.build spec ~m in
      let inline = inline_build spec in
      let p1, s1 = Core.Two_phase.run_full via_spec instance realization in
      let p2, s2 = Core.Two_phase.run_full inline instance realization in
      via_spec.Core.Two_phase.name = inline.Core.Two_phase.name
      && Array.for_all2 Bitset.equal (Core.Placement.sets p1)
           (Core.Placement.sets p2)
      && same_schedule s1 s2 (Instance.n instance))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "strategy"
    [
      ( "grammar",
        [
          QCheck_alcotest.to_alcotest round_trip;
          Alcotest.test_case "awkward floats" `Quick awkward_float_round_trip;
          Alcotest.test_case "negative cases" `Quick negative_cases;
          Alcotest.test_case "reliability errors show grammar" `Quick
            reliability_errors_show_grammar;
          Alcotest.test_case "unknown name lists grammar" `Quick
            unknown_name_lists_grammar;
          Alcotest.test_case "unknown name suggests" `Quick
            unknown_name_suggests;
          Alcotest.test_case "group alias" `Quick group_alias;
        ] );
      ( "validation",
        [
          Alcotest.test_case "smart constructors" `Quick smart_constructors_reject;
          Alcotest.test_case "build m checks" `Quick build_rejects_m_mismatch;
        ] );
      ( "registry",
        [
          Alcotest.test_case "coverage" `Quick registry_coverage;
          Alcotest.test_case "default portfolio" `Quick registry_portfolio;
        ] );
      ("golden", [ QCheck_alcotest.to_alcotest golden_equivalence ]);
    ]
