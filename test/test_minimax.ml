(* Tests for the exact minimax solver on the Theorem-1 family. *)

module Minimax = Usched_core.Minimax
module Guarantees = Usched_core.Guarantees
module Opt = Usched_core.Opt

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let partitions_small () =
  Alcotest.(check (list (list int)))
    "partitions of 4 into <= 2 parts"
    [ [ 4 ]; [ 3; 1 ]; [ 2; 2 ] ]
    (Minimax.partitions ~n:4 ~parts:2);
  Alcotest.(check (list (list int)))
    "partitions of 3 into <= 3 parts"
    [ [ 3 ]; [ 2; 1 ]; [ 1; 1; 1 ] ]
    (Minimax.partitions ~n:3 ~parts:3)

let partitions_count () =
  (* p(6) into <= 6 parts = 11. *)
  Alcotest.(check int) "p(6)" 11 (List.length (Minimax.partitions ~n:6 ~parts:6));
  Alcotest.(check int) "none into 0 parts" 0
    (List.length (Minimax.partitions ~n:1 ~parts:0))

let optimum_two_point_values () =
  (* 2 highs (2.0) and 2 lows (0.5) on 2 machines: (2+0.5 | 2+0.5). *)
  close "balanced mix" 2.5
    (Minimax.optimum_two_point ~m:2 ~alpha:2.0 ~highs:2 ~lows:2);
  close "empty" 0.0 (Minimax.optimum_two_point ~m:3 ~alpha:2.0 ~highs:0 ~lows:0);
  close "all highs" 4.0
    (Minimax.optimum_two_point ~m:2 ~alpha:2.0 ~highs:4 ~lows:0)

let partition_value_by_hand () =
  (* m=2, alpha=2, partition (2,2): the adversary inflates one machine's
     2 tasks: load 4; opt of {2,2,.5,.5} = 2.5 -> ratio 1.6. Inflating
     only 1: load 2.5, opt of {2,.5,.5,.5} = 2 -> 1.25. All low: 1/opt(1)
     = 1. So the value is 1.6. *)
  close "hand computed" 1.6 (Minimax.partition_value ~m:2 ~alpha:2.0 [| 2; 2 |])

let partition_value_distinct_counts () =
  (* Regression for the typed sort over distinct machine counts: the
     partition (5,3,2,1) has four distinct sizes, handed over scrambled.
     Recompute the value from the closed scan the module documents —
     some machine with b tasks runs h inflated and b-h deflated tasks
     while every other task deflates. *)
  let m = 4 and alpha = 2.0 in
  let counts = [ 5; 3; 2; 1 ] in
  let n = List.fold_left ( + ) 0 counts in
  let expect =
    List.fold_left
      (fun acc b ->
        let best = ref acc in
        for h = 0 to b do
          let load =
            (float_of_int h *. alpha) +. (float_of_int (b - h) /. alpha)
          in
          let opt = Minimax.optimum_two_point ~m ~alpha ~highs:h ~lows:(n - h) in
          if load /. opt > !best then best := load /. opt
        done;
        !best)
      0.0 counts
  in
  close "matches the closed scan" expect
    (Minimax.partition_value ~m ~alpha [| 2; 5; 1; 3 |])

let partition_value_unbalanced_is_worse () =
  let balanced = Minimax.partition_value ~m:2 ~alpha:2.0 [| 2; 2 |] in
  let skewed = Minimax.partition_value ~m:2 ~alpha:2.0 [| 3; 1 |] in
  checkb "skew hurts" true (skewed >= balanced)

let partition_value_domain () =
  Alcotest.check_raises "too many parts"
    (Invalid_argument "Minimax: more parts than machines") (fun () ->
      ignore (Minimax.partition_value ~m:1 ~alpha:2.0 [| 1; 1 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Minimax: negative count") (fun () ->
      ignore (Minimax.partition_value ~m:2 ~alpha:2.0 [| -1 |]))

let minimax_picks_balanced () =
  let r = Minimax.identical_minimax ~m:2 ~n:4 ~alpha:2.0 in
  close "value" 1.6 r.Minimax.value;
  Alcotest.(check (array int)) "balanced partition" [| 2; 2 |] r.Minimax.partition

let minimax_alpha_one_trivial () =
  (* Without uncertainty every balanced placement is optimal: value 1. *)
  let r = Minimax.identical_minimax ~m:3 ~n:6 ~alpha:1.0 in
  close "no adversary power" 1.0 r.Minimax.value

let minimax_single_machine () =
  (* One machine: any realization hits schedule and optimum alike. *)
  let r = Minimax.identical_minimax ~m:1 ~n:5 ~alpha:2.0 in
  close "ratio 1" 1.0 r.Minimax.value

let minimax_below_limit_bound () =
  (* Theorem 1: the minimax value never exceeds the limit bound (the
     adversary family proves the limit as lambda grows; finite sizes sit
     at or below it). *)
  List.iter
    (fun (m, lambda, alpha) ->
      let r = Minimax.identical_minimax ~m ~n:(lambda * m) ~alpha in
      checkb
        (Printf.sprintf "m=%d lambda=%d" m lambda)
        true
        (r.Minimax.value
        <= Guarantees.no_replication_lower_bound ~m ~alpha +. 1e-9))
    [ (2, 1, 2.0); (2, 2, 2.0); (2, 3, 2.0); (3, 2, 1.5); (4, 2, 2.0) ]

let minimax_vs_lpt_guarantee () =
  (* The minimax value is achievable by some placement, hence at most
     Theorem 2's guarantee for the LPT placement. *)
  List.iter
    (fun (m, lambda, alpha) ->
      let r = Minimax.identical_minimax ~m ~n:(lambda * m) ~alpha in
      checkb "below Th2" true
        (r.Minimax.value <= Guarantees.lpt_no_choice ~m ~alpha +. 1e-9))
    [ (2, 2, 2.0); (3, 3, 1.5); (4, 2, 1.25) ]

let minimax_reaches_limit_at_finite_size () =
  (* The lb-search headline, pinned: at m=4, alpha=2, lambda=4 the exact
     minimax equals the limit bound 2.2857... already. *)
  let r = Minimax.identical_minimax ~m:4 ~n:16 ~alpha:2.0 in
  close "equals limit" (Guarantees.no_replication_lower_bound ~m:4 ~alpha:2.0)
    r.Minimax.value

let minimax_grows_with_alpha () =
  let v alpha = (Minimax.identical_minimax ~m:2 ~n:6 ~alpha).Minimax.value in
  checkb "monotone in alpha" true (v 1.2 <= v 1.6 +. 1e-9 && v 1.6 <= v 2.4 +. 1e-9)

let () =
  Alcotest.run "minimax"
    [
      ( "partitions",
        [
          Alcotest.test_case "small cases" `Quick partitions_small;
          Alcotest.test_case "counts" `Quick partitions_count;
        ] );
      ( "values",
        [
          Alcotest.test_case "two-point optimum" `Quick optimum_two_point_values;
          Alcotest.test_case "hand computed" `Quick partition_value_by_hand;
          Alcotest.test_case "distinct counts" `Quick
            partition_value_distinct_counts;
          Alcotest.test_case "skew hurts" `Quick partition_value_unbalanced_is_worse;
          Alcotest.test_case "domain" `Quick partition_value_domain;
        ] );
      ( "minimax",
        [
          Alcotest.test_case "picks balanced" `Quick minimax_picks_balanced;
          Alcotest.test_case "alpha=1 trivial" `Quick minimax_alpha_one_trivial;
          Alcotest.test_case "single machine" `Quick minimax_single_machine;
          Alcotest.test_case "below Theorem-1 limit" `Quick minimax_below_limit_bound;
          Alcotest.test_case "below Theorem-2 guarantee" `Quick
            minimax_vs_lpt_guarantee;
          Alcotest.test_case "reaches limit at finite size" `Quick
            minimax_reaches_limit_at_finite_size;
          Alcotest.test_case "monotone in alpha" `Quick minimax_grows_with_alpha;
        ] );
    ]
