(* Tests for the dual approximation scheme. *)

module Da = Usched_core.Dual_approx
module Opt = Usched_core.Opt
module Assign = Usched_core.Assign
module Lb = Usched_core.Lower_bounds

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let trivial_cases () =
  close "no tasks" 0.0 (Da.makespan ~m:3 [||]);
  close "one task" 5.0 (Da.makespan ~m:3 [| 5.0 |]);
  close "single machine" 6.0 (Da.makespan ~m:1 [| 1.0; 2.0; 3.0 |])

let beats_lpt_on_classic_instance () =
  (* LPT yields 7 on (3,3,2,2,2); the scheme with a tight epsilon finds
     the optimal 6. *)
  let p = [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  checkb "below LPT" true (Da.makespan ~epsilon:0.1 ~m:2 p < 7.0 -. 1e-9)

let within_epsilon_of_optimum () =
  let rng = Usched_prng.Rng.create ~seed:21 () in
  for _ = 1 to 25 do
    let n = 5 + Usched_prng.Rng.int rng 10 in
    let m = 2 + Usched_prng.Rng.int rng 3 in
    let p = Array.init n (fun _ -> 0.1 +. (10.0 *. Usched_prng.Rng.float rng)) in
    let opt = Opt.makespan ~m p in
    List.iter
      (fun epsilon ->
        let got = Da.makespan ~epsilon ~m p in
        checkb
          (Printf.sprintf "eps=%.2f within bound" epsilon)
          true
          (got <= ((1.0 +. epsilon) *. opt) +. 1e-6);
        checkb "never below optimum" true (got >= opt -. 1e-9))
      [ 1.0; 0.5; 1.0 /. 3.0; 0.2 ]
  done

let feasible_at_accepts_above_optimum () =
  let p = [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  (* OPT = 6: the test must succeed at t = 6 and 7. *)
  List.iter
    (fun t ->
      match Da.feasible_at ~epsilon:(1.0 /. 3.0) ~t ~m:2 p with
      | Some r ->
          let max_load = Array.fold_left Float.max 0.0 r.Assign.loads in
          checkb "loads within (1+eps)t" true
            (max_load <= ((1.0 +. (1.0 /. 3.0)) *. t) +. 1e-9)
      | None -> Alcotest.failf "t=%g should be feasible" t)
    [ 6.0; 7.0 ]

let feasible_at_rejects_below_optimum () =
  let p = [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  (* t below the largest task is a certified impossibility. *)
  checkb "t below largest task" true
    (Da.feasible_at ~epsilon:(1.0 /. 3.0) ~t:2.5 ~m:2 p = None);
  (* Below the optimum (6) the dual contract allows success, but only
     with every load within (1+eps)*t. *)
  (match Da.feasible_at ~epsilon:(1.0 /. 3.0) ~t:5.5 ~m:2 p with
  | None -> ()
  | Some r ->
      let max_load = Array.fold_left Float.max 0.0 r.Assign.loads in
      checkb "relaxed capacity respected" true
        (max_load <= ((1.0 +. (1.0 /. 3.0)) *. 5.5) +. 1e-9));
  (* Far enough below the optimum even the rounded relaxation fails:
     rounded sizes sum to > m*t at t=4. *)
  checkb "t=4 infeasible" true
    (Da.feasible_at ~epsilon:(1.0 /. 3.0) ~t:4.0 ~m:2 p = None)

let assignment_covers_all_tasks () =
  let p = Array.init 20 (fun i -> 1.0 +. float_of_int (i mod 5)) in
  let r = Da.schedule ~m:4 p in
  Alcotest.(check int) "assignment length" 20
    (Array.length r.Da.assignment.Assign.assignment);
  (* Loads must equal the recomputed per-machine sums. *)
  let recomputed = Array.make 4 0.0 in
  Array.iteri
    (fun j i -> recomputed.(i) <- recomputed.(i) +. p.(j))
    r.Da.assignment.Assign.assignment;
  Alcotest.(check (array (float 1e-9))) "loads consistent" recomputed
    r.Da.assignment.Assign.loads

let target_brackets_makespan () =
  let p = Array.init 15 (fun i -> 1.0 +. float_of_int (i mod 7)) in
  let r = Da.schedule ~epsilon:0.25 ~m:3 p in
  let makespan = Assign.makespan r.Da.assignment in
  checkb "makespan <= (1+eps) * target" true
    (makespan <= ((1.0 +. r.Da.epsilon) *. r.Da.target) +. 1e-9);
  checkb "target >= LB" true (r.Da.target >= Lb.best ~m:3 p -. 1e-6)

let many_distinct_big_classes () =
  (* Regression for the typed class sort: distinct sizes spread over
     several rounding classes, submitted in scrambled order so the class
     table's fold order is not already ascending — the packing relies on
     the classes coming out in increasing numeric order. *)
  let p = [| 5.9; 9.7; 6.2; 8.3; 7.1; 4.8; 3.6; 4.4 |] in
  let opt = Opt.makespan ~m:3 p in
  List.iter
    (fun epsilon ->
      let r = Da.schedule ~epsilon ~m:3 p in
      let mk = Assign.makespan r.Da.assignment in
      checkb
        (Printf.sprintf "eps=%.2f within bound" epsilon)
        true
        (mk <= ((1.0 +. epsilon) *. opt) +. 1e-6);
      Alcotest.(check int)
        "every task assigned" (Array.length p)
        (Array.length r.Da.assignment.Assign.assignment))
    [ 0.2; 1.0 /. 3.0; 0.5 ]

let invalid_inputs () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Dual_approx: m must be >= 1")
    (fun () -> ignore (Da.schedule ~m:0 [| 1.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dual_approx: negative time") (fun () ->
      ignore (Da.schedule ~m:1 [| -1.0 |]));
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Dual_approx: epsilon must be in (0, 1]") (fun () ->
      ignore (Da.schedule ~epsilon:0.0 ~m:1 [| 1.0 |]))

let prop_guarantee =
  QCheck.Test.make ~name:"within (1+eps) of exact optimum" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 12) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let opt = Opt.makespan ~m p in
      let epsilon = 1.0 /. 3.0 in
      Da.makespan ~epsilon ~m p <= ((1.0 +. epsilon) *. opt) +. 1e-6)

let prop_never_worse_than_lpt =
  QCheck.Test.make ~name:"never worse than the LPT incumbent" ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 0 15) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      Da.makespan ~m p <= Assign.makespan (Assign.lpt ~m ~weights:p) +. 1e-9)

let () =
  Alcotest.run "dual_approx"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick trivial_cases;
          Alcotest.test_case "beats LPT" `Quick beats_lpt_on_classic_instance;
          Alcotest.test_case "epsilon sweep vs optimum" `Quick
            within_epsilon_of_optimum;
          Alcotest.test_case "dual test accepts" `Quick
            feasible_at_accepts_above_optimum;
          Alcotest.test_case "dual test rejects" `Quick
            feasible_at_rejects_below_optimum;
          Alcotest.test_case "assignment consistent" `Quick
            assignment_covers_all_tasks;
          Alcotest.test_case "target bracketing" `Quick target_brackets_makespan;
          Alcotest.test_case "many distinct big classes" `Quick
            many_distinct_big_classes;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_guarantee; prop_never_worse_than_lpt ] );
    ]
