(* Tests for the memory-aware model: Memory, Sbo, Sabo, Abo. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Four time-heavy/small-data tasks and four short/big-data tasks. *)
let mixed_instance ?(alpha = 1.3) () =
  Instance.of_ests ~m:4
    ~alpha:(Uncertainty.alpha alpha)
    ~sizes:[| 1.0; 1.0; 1.0; 1.0; 6.0; 6.0; 8.0; 8.0 |]
    [| 8.0; 7.0; 6.0; 5.0; 1.0; 1.0; 0.5; 0.5 |]

let memory_lower_bound_values () =
  close "average side" 4.0 (Core.Memory.lower_bound ~m:2 ~sizes:[| 3.0; 3.0; 2.0 |]);
  close "largest side" 9.0 (Core.Memory.lower_bound ~m:2 ~sizes:[| 9.0; 1.0 |])

let pi1_pi2_optimize_their_objective () =
  let instance = mixed_instance () in
  let pi1 = Core.Memory.pi1 instance in
  let pi2 = Core.Memory.pi2 instance in
  (* pi1 balances time better than pi2; pi2 balances memory better. *)
  let time_load assign =
    let loads = Array.make 4 0.0 in
    Array.iteri
      (fun j i -> loads.(i) <- loads.(i) +. Instance.est instance j)
      assign.Core.Assign.assignment;
    Array.fold_left Float.max 0.0 loads
  in
  let mem_load assign =
    let loads = Array.make 4 0.0 in
    Array.iteri
      (fun j i -> loads.(i) <- loads.(i) +. Instance.size instance j)
      assign.Core.Assign.assignment;
    Array.fold_left Float.max 0.0 loads
  in
  checkb "pi1 better on time" true (time_load pi1 <= time_load pi2);
  checkb "pi2 better on memory" true (mem_load pi2 <= mem_load pi1)

let sbo_split_classifies_extremes () =
  let instance = mixed_instance () in
  let split = Core.Sbo.split ~delta:1.0 instance in
  (* Big-estimate small-size tasks must land in S1, and vice versa. *)
  checkb "task 0 time-intensive" true split.Core.Sbo.time_intensive.(0);
  checkb "task 7 memory-intensive" false split.Core.Sbo.time_intensive.(7);
  Alcotest.(check (list int)) "s1 and s2 partition the tasks"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (Core.Sbo.s1_tasks split @ Core.Sbo.s2_tasks split))

let sbo_delta_monotone () =
  (* Growing delta moves tasks from S1 to S2 (never the reverse). *)
  let instance = mixed_instance () in
  let small = Core.Sbo.split ~delta:0.1 instance in
  let large = Core.Sbo.split ~delta:10.0 instance in
  Array.iteri
    (fun j in_s1_small ->
      if not in_s1_small then
        checkb "once memory-bound, stays memory-bound as delta grows" false
          large.Core.Sbo.time_intensive.(j))
    small.Core.Sbo.time_intensive

let sbo_zero_sizes_all_time_intensive () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact
      ~sizes:[| 0.0; 0.0 |] [| 1.0; 2.0 |]
  in
  let split = Core.Sbo.split ~delta:1.0 instance in
  checkb "all in S1" true (Array.for_all Fun.id split.Core.Sbo.time_intensive)

let sbo_rejects_bad_delta () =
  Alcotest.check_raises "delta 0" (Invalid_argument "Sbo.split: delta must be > 0")
    (fun () -> ignore (Core.Sbo.split ~delta:0.0 (mixed_instance ())))

let sabo_is_replica_free () =
  let p = Core.Sabo.placement ~delta:1.0 (mixed_instance ()) in
  checki "no replication" 1 (Core.Placement.max_replication p)

let sabo_schedule_valid () =
  let instance = mixed_instance () in
  let rng = Rng.create ~seed:3 () in
  let realization = Realization.uniform_factor instance rng in
  let algo = Core.Sabo.algorithm ~delta:1.0 in
  let placement, schedule = Core.Two_phase.run_full algo instance realization in
  Alcotest.(check (list string)) "valid" []
    (List.map
       (Format.asprintf "%a" Schedule.pp_violation)
       (Schedule.validate ~placement:(Core.Placement.sets placement) instance
          realization schedule))

let sabo_within_guarantees () =
  let instance = mixed_instance () in
  let m = Instance.m instance in
  let alpha = Instance.alpha_value instance in
  let rho = Core.Guarantees.lpt_offline ~m in
  let rng = Rng.create ~seed:4 () in
  List.iter
    (fun delta ->
      for _ = 1 to 10 do
        let realization = Realization.uniform_factor instance rng in
        let algo = Core.Sabo.algorithm ~delta in
        let schedule = Core.Two_phase.run algo instance realization in
        let opt = Core.Opt.makespan ~m (Realization.actuals realization) in
        checkb "Th5 makespan" true
          (Schedule.makespan schedule
          <= (Core.Guarantees.sabo_makespan ~alpha ~delta ~rho1:rho *. opt) +. 1e-9);
        let mem = Core.Memory.of_placement instance (Core.Sabo.placement ~delta instance) in
        let mem_star = Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance) in
        checkb "Th6 memory" true
          (mem <= (Core.Guarantees.sabo_memory ~delta ~rho2:rho *. mem_star) +. 1e-9)
      done)
    [ 0.5; 1.0; 2.0 ]

let abo_replicates_s1_only () =
  let instance = mixed_instance () in
  let split = Core.Sbo.split ~delta:1.0 instance in
  let p = Core.Abo.placement ~delta:1.0 instance in
  Array.iteri
    (fun j in_s1 ->
      checki
        (Printf.sprintf "task %d replication" j)
        (if in_s1 then 4 else 1)
        (Core.Placement.replication p j))
    split.Core.Sbo.time_intensive

let abo_phase2_order_s2_first () =
  let instance = mixed_instance () in
  let split = Core.Sbo.split ~delta:1.0 instance in
  let order = Core.Abo.phase2_order split in
  let s2 = Core.Sbo.s2_tasks split in
  let prefix = Array.to_list (Array.sub order 0 (List.length s2)) in
  Alcotest.(check (list int)) "S2 tasks first" s2 prefix

let abo_schedule_valid () =
  let instance = mixed_instance () in
  let rng = Rng.create ~seed:5 () in
  let realization = Realization.log_uniform_factor instance rng in
  let algo = Core.Abo.algorithm ~delta:1.0 in
  let placement, schedule = Core.Two_phase.run_full algo instance realization in
  Alcotest.(check (list string)) "valid" []
    (List.map
       (Format.asprintf "%a" Schedule.pp_violation)
       (Schedule.validate ~placement:(Core.Placement.sets placement) instance
          realization schedule))

let abo_within_guarantees () =
  let instance = mixed_instance () in
  let m = Instance.m instance in
  let alpha = Instance.alpha_value instance in
  let rho = Core.Guarantees.lpt_offline ~m in
  let rng = Rng.create ~seed:6 () in
  List.iter
    (fun delta ->
      for _ = 1 to 10 do
        let realization = Realization.uniform_factor instance rng in
        let algo = Core.Abo.algorithm ~delta in
        let schedule = Core.Two_phase.run algo instance realization in
        let opt = Core.Opt.makespan ~m (Realization.actuals realization) in
        checkb "Th7 makespan" true
          (Schedule.makespan schedule
          <= (Core.Guarantees.abo_makespan ~m ~alpha ~delta ~rho1:rho *. opt)
             +. 1e-9);
        let mem = Core.Memory.of_placement instance (Core.Abo.placement ~delta instance) in
        let mem_star = Core.Memory.lower_bound ~m ~sizes:(Instance.sizes instance) in
        checkb "Th8 memory" true
          (mem <= (Core.Guarantees.abo_memory ~m ~delta ~rho2:rho *. mem_star) +. 1e-9)
      done)
    [ 0.5; 1.0; 2.0 ]

let abo_uses_more_memory_than_sabo () =
  let instance = mixed_instance () in
  let sabo = Core.Memory.of_placement instance (Core.Sabo.placement ~delta:1.0 instance) in
  let abo = Core.Memory.of_placement instance (Core.Abo.placement ~delta:1.0 instance) in
  checkb "replication costs memory" true (abo >= sabo)

let () =
  Alcotest.run "memory"
    [
      ( "memory measures",
        [
          Alcotest.test_case "lower bound" `Quick memory_lower_bound_values;
          Alcotest.test_case "pi1/pi2 objectives" `Quick
            pi1_pi2_optimize_their_objective;
        ] );
      ( "sbo split",
        [
          Alcotest.test_case "classifies extremes" `Quick sbo_split_classifies_extremes;
          Alcotest.test_case "monotone in delta" `Quick sbo_delta_monotone;
          Alcotest.test_case "zero sizes" `Quick sbo_zero_sizes_all_time_intensive;
          Alcotest.test_case "rejects bad delta" `Quick sbo_rejects_bad_delta;
        ] );
      ( "sabo",
        [
          Alcotest.test_case "replica-free" `Quick sabo_is_replica_free;
          Alcotest.test_case "valid schedules" `Quick sabo_schedule_valid;
          Alcotest.test_case "within Th5/Th6" `Quick sabo_within_guarantees;
        ] );
      ( "abo",
        [
          Alcotest.test_case "replicates S1 only" `Quick abo_replicates_s1_only;
          Alcotest.test_case "S2 scheduled first" `Quick abo_phase2_order_s2_first;
          Alcotest.test_case "valid schedules" `Quick abo_schedule_valid;
          Alcotest.test_case "within Th7/Th8" `Quick abo_within_guarantees;
          Alcotest.test_case "memory ordering vs SABO" `Quick
            abo_uses_more_memory_than_sabo;
        ] );
    ]
