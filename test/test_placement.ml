(* Unit tests for placements. *)

module Placement = Usched_core.Placement
module Bitset = Usched_model.Bitset

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let singletons_basic () =
  let p = Placement.singletons ~m:3 [| 0; 2; 2 |] in
  checki "n" 3 (Placement.n p);
  checki "m" 3 (Placement.m p);
  checkb "task 0 on machine 0" true (Placement.allowed p ~task:0 ~machine:0);
  checkb "task 0 not on machine 1" false (Placement.allowed p ~task:0 ~machine:1);
  checki "replication" 1 (Placement.replication p 1);
  checki "max replication" 1 (Placement.max_replication p);
  checki "total replicas" 3 (Placement.total_replicas p)

let full_basic () =
  let p = Placement.full ~m:4 ~n:2 in
  checki "max replication" 4 (Placement.max_replication p);
  checki "total replicas" 8 (Placement.total_replicas p);
  checkb "everywhere" true (Placement.allowed p ~task:1 ~machine:3)

let group_assignment_basic () =
  let groups = [| [| 0; 1 |]; [| 2; 3 |] |] in
  let p = Placement.of_group_assignment ~m:4 ~groups [| 0; 1; 0 |] in
  checkb "task 1 in group 1" true (Placement.allowed p ~task:1 ~machine:2);
  checkb "task 1 not in group 0" false (Placement.allowed p ~task:1 ~machine:0);
  checki "replication is group size" 2 (Placement.max_replication p)

let empty_set_rejected () =
  Alcotest.check_raises "empty machine set"
    (Invalid_argument "Placement.of_sets: task 0 placed nowhere") (fun () ->
      ignore (Placement.of_sets ~m:2 [| Bitset.create 2 |]))

let capacity_mismatch_rejected () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Placement.of_sets: task 0 capacity mismatch") (fun () ->
      ignore (Placement.of_sets ~m:2 [| Bitset.singleton 3 0 |]))

let memory_loads_count_every_replica () =
  (* Task 0 (size 2) everywhere; task 1 (size 3) only on machine 1. *)
  let sets = [| Bitset.full 2; Bitset.singleton 2 1 |] in
  let p = Placement.of_sets ~m:2 sets in
  let loads = Placement.memory_loads p ~sizes:[| 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "per machine" [| 2.0; 5.0 |] loads;
  close "mem_max" 5.0 (Placement.memory_max p ~sizes:[| 2.0; 3.0 |])

let degrees_per_task () =
  let p =
    Placement.of_sets ~m:4
      [| Bitset.of_list 4 [ 0 ]; Bitset.of_list 4 [ 1; 3 ]; Bitset.full 4 |]
  in
  Alcotest.(check (array int)) "one entry per task, its replica count"
    [| 1; 2; 4 |] (Placement.degrees p);
  checki "max replication agrees" 4 (Placement.max_replication p);
  checki "total replicas agree" 7
    (Array.fold_left ( + ) 0 (Placement.degrees p))

let memory_sizes_length_checked () =
  let p = Placement.full ~m:2 ~n:2 in
  Alcotest.check_raises "length"
    (Invalid_argument "Placement.memory_loads: sizes length mismatch") (fun () ->
      ignore (Placement.memory_loads p ~sizes:[| 1.0 |]))

let failure_with_replication_survives () =
  let p = Placement.full ~m:3 ~n:2 in
  (match Placement.without_machine p 1 with
  | None -> Alcotest.fail "full replication must survive"
  | Some degraded ->
      checkb "machine 1 removed" false
        (Placement.allowed degraded ~task:0 ~machine:1);
      checkb "others kept" true (Placement.allowed degraded ~task:0 ~machine:0);
      checki "m unchanged" 3 (Placement.m degraded));
  checkb "survives any failure" true (Placement.survives_any_failure p)

let failure_without_replication_fatal () =
  let p = Placement.singletons ~m:2 [| 0; 1 |] in
  checkb "losing machine 0 strands task 0" true
    (Placement.without_machine p 0 = None);
  checkb "does not survive" false (Placement.survives_any_failure p)

let failure_original_untouched () =
  let p = Placement.full ~m:2 ~n:1 in
  ignore (Placement.without_machine p 0);
  checkb "original intact" true (Placement.allowed p ~task:0 ~machine:0)

let failure_bad_machine_rejected () =
  let p = Placement.full ~m:2 ~n:1 in
  Alcotest.check_raises "machine id"
    (Invalid_argument "Placement.without_machine: machine id") (fun () ->
      ignore (Placement.without_machine p 2))

let sets_are_fresh_array () =
  let p = Placement.full ~m:2 ~n:2 in
  let sets = Placement.sets p in
  checki "two sets" 2 (Array.length sets);
  (* Mutating the returned array must not corrupt the placement. *)
  sets.(0) <- Bitset.create 2;
  checkb "placement unchanged" true (Placement.allowed p ~task:0 ~machine:0)

(* ----------------- recovery-layer static helpers ------------------- *)

let with_replica_grows_one_set () =
  let p = Placement.singletons ~m:3 [| 0; 1 |] in
  let q = Placement.with_replica p ~task:0 ~machine:2 in
  checkb "replica added" true (Placement.allowed q ~task:0 ~machine:2);
  checkb "original untouched" false (Placement.allowed p ~task:0 ~machine:2);
  checkb "other task shared" true (Placement.set q 1 == Placement.set p 1);
  checki "replication grew" 2 (Placement.replication q 0);
  (* Already a holder: the placement is returned physically unchanged. *)
  checkb "idempotent on holders" true (Placement.with_replica q ~task:0 ~machine:2 == q);
  Alcotest.check_raises "bad task"
    (Invalid_argument "Placement.with_replica: task id") (fun () ->
      ignore (Placement.with_replica p ~task:9 ~machine:0))

let under_replicated_reports_ascending () =
  let p =
    Placement.of_sets ~m:3
      [| Bitset.of_list 3 [ 0; 1 ]; Bitset.singleton 3 2; Bitset.singleton 3 0 |]
  in
  let alive = Bitset.of_list 3 [ 0; 1 ] in
  Alcotest.(check (list int))
    "tasks below r=2 among alive machines" [ 1; 2 ]
    (Placement.under_replicated p ~r:2 ~alive);
  Alcotest.(check (list int))
    "r=1 only flags the dead-data task" [ 1 ]
    (Placement.under_replicated p ~r:1 ~alive);
  Alcotest.(check (list int))
    "r=0 flags nothing" []
    (Placement.under_replicated p ~r:0 ~alive)

let machine_loads_count_replicas () =
  let p =
    Placement.of_sets ~m:3
      [| Bitset.of_list 3 [ 0; 1 ]; Bitset.singleton 3 0 |]
  in
  Alcotest.(check (array int))
    "replica count per machine" [| 2; 1; 0 |] (Placement.machine_loads p)

let () =
  Alcotest.run "placement"
    [
      ( "unit",
        [
          Alcotest.test_case "singletons" `Quick singletons_basic;
          Alcotest.test_case "full" `Quick full_basic;
          Alcotest.test_case "groups" `Quick group_assignment_basic;
          Alcotest.test_case "empty rejected" `Quick empty_set_rejected;
          Alcotest.test_case "capacity rejected" `Quick capacity_mismatch_rejected;
          Alcotest.test_case "memory loads" `Quick memory_loads_count_every_replica;
          Alcotest.test_case "degrees" `Quick degrees_per_task;
          Alcotest.test_case "memory length check" `Quick memory_sizes_length_checked;
          Alcotest.test_case "sets copy" `Quick sets_are_fresh_array;
        ] );
      ( "machine failure",
        [
          Alcotest.test_case "replication survives" `Quick
            failure_with_replication_survives;
          Alcotest.test_case "no replication is fatal" `Quick
            failure_without_replication_fatal;
          Alcotest.test_case "original untouched" `Quick failure_original_untouched;
          Alcotest.test_case "bad machine id" `Quick failure_bad_machine_rejected;
        ] );
      ( "recovery helpers",
        [
          Alcotest.test_case "with_replica" `Quick with_replica_grows_one_set;
          Alcotest.test_case "under_replicated" `Quick
            under_replicated_reports_ascending;
          Alcotest.test_case "machine_loads" `Quick machine_loads_count_replicas;
        ] );
    ]
