(* Unit and property tests for the binary heap. *)

module Pqueue = Usched_desim.Pqueue

let checkb = Alcotest.(check bool)
let int_compare = Int.compare

let push_pop_sorted () =
  let q = Pqueue.create ~compare:int_compare () in
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check (list int)) "ascending" [ 1; 1; 2; 3; 4; 5; 9 ] (Pqueue.drain q)

let empty_behaviour () =
  let q = Pqueue.create ~compare:int_compare () in
  checkb "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Pqueue.length q);
  checkb "pop none" true (Pqueue.pop q = None);
  checkb "peek none" true (Pqueue.peek q = None);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Pqueue.pop_exn: empty heap") (fun () ->
      ignore (Pqueue.pop_exn q))

let peek_does_not_remove () =
  let q = Pqueue.create ~compare:int_compare () in
  Pqueue.push q 3;
  Pqueue.push q 1;
  checkb "peek smallest" true (Pqueue.peek q = Some 1);
  Alcotest.(check int) "still 2 elements" 2 (Pqueue.length q)

let of_array_heapifies () =
  let q = Pqueue.of_array ~compare:int_compare [| 9; 3; 7; 1; 5 |] in
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7; 9 ] (Pqueue.drain q)

let interleaved_operations () =
  let q = Pqueue.create ~compare:int_compare () in
  Pqueue.push q 5;
  Pqueue.push q 2;
  Alcotest.(check int) "first pop" 2 (Pqueue.pop_exn q);
  Pqueue.push q 1;
  Pqueue.push q 7;
  Alcotest.(check int) "second pop" 1 (Pqueue.pop_exn q);
  Alcotest.(check int) "third pop" 5 (Pqueue.pop_exn q);
  Alcotest.(check int) "fourth pop" 7 (Pqueue.pop_exn q);
  checkb "now empty" true (Pqueue.is_empty q)

let tie_breaking_via_compare () =
  (* The engine relies on lexicographic (time, id) comparison. *)
  let compare (ta, ia) (tb, ib) =
    match Float.compare ta tb with 0 -> Int.compare ia ib | c -> c
  in
  let q = Pqueue.create ~compare () in
  List.iter (Pqueue.push q) [ (1.0, 3); (1.0, 1); (0.5, 9); (1.0, 2) ];
  Alcotest.(check (list (pair (float 0.0) int)))
    "time then id"
    [ (0.5, 9); (1.0, 1); (1.0, 2); (1.0, 3) ]
    (Pqueue.drain q)

(* A drained queue must not keep popped payloads reachable: the engine
   holds one queue for a whole run, so a leaked slot pins event payloads
   (closures over large simulation state) for the run's lifetime. Weak
   pointers see through the heap's internal array. *)
let no_retention_after_drain () =
  let compare (a, _) (b, _) = Int.compare a b in
  let q = Pqueue.create ~compare () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let boxed = (i, ref i) in
    Weak.set weak i (Some boxed);
    Pqueue.push q boxed
  done;
  (* Interleave pops and pushes so the heap grows, shrinks and re-grows
     (exercising the grow-array fill and the vacated-slot aliasing). *)
  for _ = 1 to n / 2 do
    ignore (Pqueue.pop q)
  done;
  for i = n to n + 7 do
    let boxed = (i, ref i) in
    Pqueue.push q boxed
  done;
  while not (Pqueue.is_empty q) do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  let leaked = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr leaked
  done;
  Alcotest.(check int) "no payload survives a full drain" 0 !leaked;
  (* The queue stays usable after releasing its storage. *)
  Pqueue.push q (42, ref 42);
  Alcotest.(check int) "reusable" 42 (fst (Pqueue.pop_exn q))

let prop_drain_is_sorted =
  QCheck.Test.make ~name:"drain yields a sorted permutation" ~count:300
    QCheck.(list int)
    (fun xs ->
      let q = Pqueue.create ~compare:int_compare () in
      List.iter (Pqueue.push q) xs;
      Pqueue.drain q = List.sort int_compare xs)

let prop_mixed_against_model =
  QCheck.Test.make ~name:"interleaved push/pop matches sorted-list model"
    ~count:300
    QCheck.(small_list (option small_int))
    (fun ops ->
      (* Some x = push x; None = pop. *)
      let q = Pqueue.create ~compare:int_compare () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Pqueue.push q x;
              model := List.sort int_compare (x :: !model);
              true
          | None -> (
              match (Pqueue.pop q, !model) with
              | None, [] -> true
              | Some v, x :: rest when v = x ->
                  model := rest;
                  true
              | _ -> false))
        ops)

let () =
  Alcotest.run "pqueue"
    [
      ( "unit",
        [
          Alcotest.test_case "push/pop sorted" `Quick push_pop_sorted;
          Alcotest.test_case "empty" `Quick empty_behaviour;
          Alcotest.test_case "peek" `Quick peek_does_not_remove;
          Alcotest.test_case "of_array" `Quick of_array_heapifies;
          Alcotest.test_case "interleaved" `Quick interleaved_operations;
          Alcotest.test_case "tie breaking" `Quick tie_breaking_via_compare;
          Alcotest.test_case "no retention" `Quick no_retention_after_drain;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_drain_is_sorted; prop_mixed_against_model ] );
    ]
