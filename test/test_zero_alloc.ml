(* Allocation regression gates for the zero-alloc refactor, measured
   with [Gc.minor_words] directly — the same probes behind the bench
   table, but as hard test assertions.

   The load-bearing trick: every full-length array the engines and
   packers allocate per run (n tasks and beyond) exceeds the minor-heap
   young size, so it lands in the major heap and is invisible to
   [Gc.minor_words]. A minor-word count that does NOT grow with n is
   therefore exactly the claim "the hot loop allocates nothing per
   task": per-run setup (closures, the policy value, the heap record)
   may cost a bounded constant, but the per-event path must be free.

   Each measurement warms up twice (first calls grow heap capacity,
   trigger lazy setup) and takes the minimum over three runs so a GC
   hiccup cannot fail the gate spuriously. *)

module Engine = Usched_desim.Engine
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Rng = Usched_prng.Rng
module Multifit = Usched_core.Multifit
module Assign = Usched_core.Assign
module Fsort = Usched_core.Fsort

let m = 32

let measure f =
  ignore (Sys.opaque_identity (f ()));
  ignore (Sys.opaque_identity (f ()));
  let best = ref infinity in
  for _ = 1 to 3 do
    let before = Gc.minor_words () in
    ignore (Sys.opaque_identity (f ()));
    let after = Gc.minor_words () in
    if after -. before < !best then best := after -. before
  done;
  !best

let setup ~shared n =
  let rng = Rng.create ~seed:(7 * n) () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    if shared then Array.make n (Bitset.full m)
      (* one physical holder set: the bucketed default policy *)
    else
      Array.init n (fun j ->
          Bitset.of_list m [ j mod m; (j + 1) mod m ])
      (* n distinct sets: overflows the bucket cap, the plain cursors *)
  in
  let order = Instance.lpt_order instance in
  (instance, realization, placement, order, rng)

(* Healthy engine, metrics and tracing off: the per-run minor-word
   count must be independent of n — zero words per task — and small in
   absolute terms, for both default-policy variants. *)
let healthy_is_allocation_free () =
  List.iter
    (fun (label, shared) ->
      let words n =
        let instance, realization, placement, order, _ = setup ~shared n in
        measure (fun () -> Engine.run instance realization ~placement ~order)
      in
      let w2 = words 2000 and w4 = words 4000 in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: minor words independent of n" label)
        w2 w4;
      Alcotest.(check bool)
        (Printf.sprintf "%s: per-run constant under 4096 words (got %.0f)"
           label w2)
        true (w2 <= 4096.0))
    [ ("bucketed list-priority", true); ("plain list-priority", false) ]

(* The faulty engine's epilogue materializes one [Finished] fate per
   task (a boxed entry), so per-run minor words grow with n — but the
   slope must stay a small constant, not the old per-event record and
   option churn. Measured slope is ~14 words/task bare and ~27 with
   recovery + speculation; the gate allows 64. *)
let faulty_slope_is_bounded () =
  let words ~recover n =
    let instance, realization, placement, order, rng = setup ~shared:true n in
    let faults =
      Trace.merge
        (Trace.random_outages rng ~m ~p:0.5 ~horizon:40.0 ~duration:(0.5, 3.0))
        (Trace.random_slowdowns rng ~m ~p:0.5 ~horizon:40.0 ~factor:(0.3, 0.9))
    in
    measure (fun () ->
        if recover then
          Engine.run_faulty ~speculation:1.5
            ~recovery:
              (Recovery.make ~detection_latency:0.5
                 ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:1.0
                 ~checkpoint_interval:1.0 ~max_retries:2 ())
            instance realization ~faults ~placement ~order
        else Engine.run_faulty instance realization ~faults ~placement ~order)
  in
  List.iter
    (fun (label, recover) ->
      let w2 = words ~recover 2000 and w4 = words ~recover 4000 in
      let slope = (w4 -. w2) /. 2000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: slope %.1f words/task under 64" label slope)
        true (slope <= 64.0))
    [ ("bare faults", false); ("recovery + speculation", true) ]

(* The packers: multifit's bisection must not allocate per task beyond
   its one index sort (the old version burned 21.7M minor words at
   n=10k, m=100 — the gate pins the rewrite two orders of magnitude
   below that), and the list-assignment heap loop must be constant. *)
let packers_are_allocation_free () =
  let n = 10_000 and mm = 100 in
  let rng = Rng.create ~seed:42 () in
  let p = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let mf = measure (fun () -> Multifit.schedule ~m:mm p) in
  Alcotest.(check bool)
    (Printf.sprintf "multifit n=10k under 300k minor words (got %.0f)" mf)
    true (mf <= 300_000.0);
  let order = Assign.decreasing_order p in
  let la = measure (fun () -> Assign.list_assign ~m:mm ~order ~weights:p) in
  Alcotest.(check bool)
    (Printf.sprintf "list_assign n=10k under 4096 minor words (got %.0f)" la)
    true (la <= 4096.0);
  let scratch = Array.copy p in
  let fs =
    measure (fun () ->
        Array.blit p 0 scratch 0 n;
        Fsort.descending scratch)
  in
  Alcotest.(check bool)
    (Printf.sprintf "Fsort.descending n=10k under 64 minor words (got %.0f)"
       fs)
    true (fs <= 64.0)

let () =
  Alcotest.run "zero_alloc"
    [
      ( "engine",
        [
          Alcotest.test_case "healthy loop allocates nothing per task" `Quick
            healthy_is_allocation_free;
          Alcotest.test_case "faulty slope bounded" `Quick
            faulty_slope_is_bounded;
        ] );
      ( "packers",
        [
          Alcotest.test_case "multifit and list-assign" `Quick
            packers_are_allocation_free;
        ] );
    ]
