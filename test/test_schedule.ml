(* Unit tests for schedules, validation and Gantt rendering. *)

module Schedule = Usched_desim.Schedule
module Gantt = Usched_desim.Gantt
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let entry machine start finish = { Schedule.machine; start; finish }

let basic_measures () =
  let s =
    Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 1 0.0 3.0; entry 0 2.0 5.0 |]
  in
  Alcotest.(check int) "n" 3 (Schedule.n s);
  Alcotest.(check int) "m" 2 (Schedule.m s);
  close "makespan" 5.0 (Schedule.makespan s);
  Alcotest.(check (array (float 1e-12))) "loads" [| 5.0; 3.0 |] (Schedule.loads s);
  Alcotest.(check (list int)) "machine 0 tasks in start order" [ 0; 2 ]
    (Schedule.machine_tasks s 0);
  Alcotest.(check (array int)) "assignment" [| 0; 1; 0 |] (Schedule.assignment s)

let make_validation () =
  Alcotest.check_raises "machine out of range"
    (Invalid_argument "Schedule.make: task 0 on machine 5") (fun () ->
      ignore (Schedule.make ~m:2 [| entry 5 0.0 1.0 |]));
  Alcotest.check_raises "finish before start"
    (Invalid_argument "Schedule.make: task 0 has bad times") (fun () ->
      ignore (Schedule.make ~m:2 [| entry 0 2.0 1.0 |]))

let of_assignment_packs_back_to_back () =
  let s =
    Schedule.of_assignment ~m:2 ~durations:[| 2.0; 3.0; 4.0 |] [| 0; 0; 1 |]
  in
  let e1 = Schedule.entry s 1 in
  close "second task starts when first ends" 2.0 e1.Schedule.start;
  close "makespan" 5.0 (Schedule.makespan s)

let fixture () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 2.0; 3.0 |]
  in
  let realization = Realization.exact instance in
  (instance, realization)

let validate_accepts_good_schedule () =
  let instance, realization = fixture () in
  let s = Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 1 0.0 3.0 |] in
  Alcotest.(check int) "no violations" 0
    (List.length (Schedule.validate instance realization s))

let validate_catches_wrong_duration () =
  let instance, realization = fixture () in
  let s = Schedule.make ~m:2 [| entry 0 0.0 9.0; entry 1 0.0 3.0 |] in
  match Schedule.validate instance realization s with
  | [ Schedule.Wrong_duration { task = 0; _ } ] -> ()
  | other ->
      Alcotest.failf "expected one duration violation, got %d" (List.length other)

let validate_catches_overlap () =
  let instance, realization = fixture () in
  let s = Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 0 1.0 4.0 |] in
  checkb "overlap detected" true
    (List.exists
       (function Schedule.Overlap _ -> true | _ -> false)
       (Schedule.validate instance realization s))

let validate_catches_misplacement () =
  let instance, realization = fixture () in
  let placement = [| Bitset.singleton 2 1; Bitset.full 2 |] in
  let s = Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 1 0.0 3.0 |] in
  checkb "locality violation detected" true
    (List.exists
       (function Schedule.Not_allowed { task = 0; machine = 0 } -> true | _ -> false)
       (Schedule.validate ~placement instance realization s))

let validate_allows_idle_gaps () =
  let instance, realization = fixture () in
  (* Machine 0 idles between its two... here task 1 on machine 0 with a gap. *)
  let s = Schedule.make ~m:2 [| entry 0 0.0 2.0; entry 0 10.0 13.0 |] in
  Alcotest.(check int) "gaps are fine" 0
    (List.length (Schedule.validate instance realization s))

let gantt_contains_all_machines () =
  let s = Schedule.make ~m:3 [| entry 0 0.0 2.0; entry 2 0.0 1.0 |] in
  let text = Gantt.render ~width:20 s in
  checkb "mentions m0" true
    (String.length text > 0
    && List.for_all
         (fun needle ->
           let rec contains i =
             i + String.length needle <= String.length text
             && (String.sub text i (String.length needle) = needle
                || contains (i + 1))
           in
           contains 0)
         [ "m0"; "m1"; "m2"; "makespan" ])

let gantt_zero_duration () =
  let s = Schedule.make ~m:1 [||] in
  checkb "renders something" true (String.length (Gantt.render s) > 0)

let gantt_two_requires_same_m () =
  let a = Schedule.make ~m:1 [| entry 0 0.0 1.0 |] in
  let b = Schedule.make ~m:2 [| entry 0 0.0 1.0 |] in
  Alcotest.check_raises "machine count mismatch"
    (Invalid_argument "Gantt.render_two: machine counts differ") (fun () ->
      ignore (Gantt.render_two ~left_title:"a" ~right_title:"b" a b))

let () =
  Alcotest.run "schedule"
    [
      ( "measures",
        [
          Alcotest.test_case "basic" `Quick basic_measures;
          Alcotest.test_case "construction validation" `Quick make_validation;
          Alcotest.test_case "of_assignment" `Quick of_assignment_packs_back_to_back;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts good" `Quick validate_accepts_good_schedule;
          Alcotest.test_case "wrong duration" `Quick validate_catches_wrong_duration;
          Alcotest.test_case "overlap" `Quick validate_catches_overlap;
          Alcotest.test_case "misplacement" `Quick validate_catches_misplacement;
          Alcotest.test_case "idle gaps ok" `Quick validate_allows_idle_gaps;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "all machines shown" `Quick gantt_contains_all_machines;
          Alcotest.test_case "empty schedule" `Quick gantt_zero_duration;
          Alcotest.test_case "side-by-side m check" `Quick gantt_two_requires_same_m;
        ] );
    ]
