(* Recovery layer: hand-computed healing/detection/checkpoint timelines,
   and qcheck properties — most importantly the golden equivalence of
   [recovery = none] with the pre-recovery engine, bit for bit. *)

module Engine = Usched_desim.Engine
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Fault = Usched_faults.Fault
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json
module Rng = Usched_prng.Rng

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let submission_order n = Array.init n (fun j -> j)

let finished_entry outcome j =
  match outcome.Engine.fates.(j) with
  | Engine.Finished e -> e
  | Engine.Stranded -> Alcotest.failf "task %d stranded" j

let counter snapshot name =
  match Metrics.find snapshot name with
  | Some (Metrics.Counter c) -> c
  | _ -> 0

let crash ~machine ~time = { Fault.machine; time; kind = Fault.Crash }

let outage ~machine ~time ~until =
  { Fault.machine; time; kind = Fault.Outage until }

(* ------------------------- policy record --------------------------- *)

let policy_validation () =
  checkb "none is none" true (Recovery.is_none Recovery.none);
  checkb "make () is structurally neutral but not none" false
    (Recovery.is_none (Recovery.make ()));
  checkb "make () is active" true (Recovery.is_active (Recovery.make ()));
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "negative latency rejected" true
    (raises (fun () -> Recovery.make ~detection_latency:(-1.0) ()));
  checkb "nan latency rejected" true
    (raises (fun () -> Recovery.make ~detection_latency:Float.nan ()));
  checkb "infinite latency rejected" true
    (raises (fun () -> Recovery.make ~detection_latency:infinity ()));
  checkb "zero bandwidth rejected" true
    (raises (fun () -> Recovery.make ~bandwidth:0.0 ()));
  checkb "nan bandwidth rejected" true
    (raises (fun () -> Recovery.make ~bandwidth:Float.nan ()));
  checkb "infinite bandwidth fine" true
    (Recovery.is_active (Recovery.make ~bandwidth:infinity ()));
  checkb "negative target rejected" true
    (raises (fun () -> Recovery.make ~rereplication_target:(Recovery.Fixed (-2)) ()));
  checkb "negative retries rejected" true
    (raises (fun () -> Recovery.make ~max_retries:(-1) ()));
  checkb "nan checkpoint rejected" true
    (raises (fun () -> Recovery.make ~checkpoint_interval:Float.nan ()))

let target_grammar () =
  Alcotest.(check string) "degree prints" "degree"
    (Recovery.target_to_string Recovery.Degree);
  Alcotest.(check string) "fixed prints" "2"
    (Recovery.target_to_string (Recovery.Fixed 2));
  checkb "degree parses" true
    (Recovery.target_of_string "degree" = Ok Recovery.Degree);
  checkb "parsing is case-insensitive" true
    (Recovery.target_of_string "Degree" = Ok Recovery.Degree);
  checkb "count parses" true
    (Recovery.target_of_string "3" = Ok (Recovery.Fixed 3));
  List.iter
    (fun s ->
      checkb (Printf.sprintf "%S rejected" s) true
        (match Recovery.target_of_string s with
        | Error _ -> true
        | Ok _ -> false))
    [ "-1"; "x"; ""; "1.5" ];
  checkb "Fixed 0 does not heal" false (Recovery.heals Recovery.none);
  checkb "Fixed 2 heals" true
    (Recovery.heals (Recovery.make ~rereplication_target:(Recovery.Fixed 2) ()));
  checkb "Degree heals" true
    (Recovery.heals (Recovery.make ~rereplication_target:Recovery.Degree ()));
  checki "Fixed ignores the degree" 2
    (Recovery.target_for
       (Recovery.make ~rereplication_target:(Recovery.Fixed 2) ())
       ~degree:5);
  checki "Degree follows the degree" 5
    (Recovery.target_for
       (Recovery.make ~rereplication_target:Recovery.Degree ())
       ~degree:5)

let backoff_values () =
  let r = Recovery.make ~detection_latency:1.5 ~max_retries:3 () in
  close "no blinks, no backoff" 0.0 (Recovery.backoff r ~blinks:0);
  close "first blink" 1.5 (Recovery.backoff r ~blinks:1);
  close "second blink doubles" 3.0 (Recovery.backoff r ~blinks:2);
  close "third blink doubles again" 6.0 (Recovery.backoff r ~blinks:3);
  close "capped at max_retries" 6.0 (Recovery.backoff r ~blinks:9);
  close "no retries, no backoff" 0.0
    (Recovery.backoff (Recovery.make ~detection_latency:1.5 ()) ~blinks:4);
  close "no latency, no backoff" 0.0
    (Recovery.backoff (Recovery.make ~max_retries:3 ()) ~blinks:2)

(* ------------------------- unit scenarios -------------------------- *)

let heal_rescues_singleton () =
  (* One task of 4 whose data lives only on machine 0, two machines,
     healer target 2 at bandwidth 1 (size 1 => transfer takes 1).
     t=0: copy m0 -> m1 starts alongside the task; t=1: m1 holds the
     data. Machine 0 crashes at 3: passive engine strands the task, the
     healed engine re-dispatches it to m1 (3..7). *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement () = [| Bitset.singleton 2 0 |] in
  let faults = Trace.of_events ~m:2 [ crash ~machine:0 ~time:3.0 ] in
  let passive =
    Engine.run_faulty instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  Alcotest.(check (list int)) "passive strands" [ 0 ] passive.Engine.stranded;
  close "passive wasted the killed work" 3.0 passive.Engine.wasted;
  let recovery =
    Recovery.make ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:1.0 ()
  in
  let metrics = Metrics.create () in
  let outcome, events =
    Engine.run_faulty_traced ~recovery ~metrics instance realization ~faults
      ~placement:(placement ()) ~order:(submission_order 1)
  in
  checki "healed engine completes" 1 outcome.Engine.completed;
  Alcotest.(check (list int)) "nothing stranded" [] outcome.Engine.stranded;
  let e = finished_entry outcome 0 in
  checki "finished on the healed replica" 1 e.Schedule.machine;
  close "re-dispatched at the crash" 3.0 e.Schedule.start;
  close "re-run from scratch" 7.0 e.Schedule.finish;
  close "killed work still wasted" 3.0 outcome.Engine.wasted;
  checki "one transfer" 1 (counter outcome.Engine.metrics "engine.rereplications");
  checkb "transfer completed at t=1" true
    (List.exists
       (function
         | Engine.Rereplication_completed { time; task = 0; src = 0; dst = 1 }
           ->
             time = 1.0
         | _ -> false)
       events)

let detection_latency_delays_redispatch () =
  (* One task of 4 on {0, 1}, running on m0; m0 crashes at 1. With
     instantaneous detection the survivor restarts it at 1 (finish 5);
     with a detection latency of 2 the orphan is only released when the
     detector fires at 3 (finish 7). *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 4.0 |]
  in
  let realization = Realization.exact instance in
  let placement () = [| Bitset.full 2 |] in
  let faults = Trace.of_events ~m:2 [ crash ~machine:0 ~time:1.0 ] in
  let instant =
    Engine.run_faulty
      ~recovery:(Recovery.make ())
      instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  close "instant detection restarts at the crash" 5.0 instant.Engine.makespan;
  let lagged, events =
    Engine.run_faulty_traced
      ~recovery:(Recovery.make ~detection_latency:2.0 ())
      instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  checki "still completes" 1 lagged.Engine.completed;
  let e = finished_entry lagged 0 in
  close "restart waits for the detector" 3.0 e.Schedule.start;
  close "finish slides by the latency" 7.0 lagged.Engine.makespan;
  checkb "detection event at fault + latency" true
    (List.exists
       (function
         | Engine.Failure_detected { time; machine = 0 } -> time = 3.0
         | _ -> false)
       events)

let checkpoint_resume_on_rejoin () =
  (* One task of 10 on a single machine, outage [5, 8), checkpoint
     interval 2. At the kill 5 units are done, 4 of them banked
     (floor(5/2)*2): wasted 1 instead of 5. On rejoin the machine
     resumes from the checkpoint: 6 remaining units, finish 14 instead
     of the passive restart's 18. *)
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 10.0 |]
  in
  let realization = Realization.exact instance in
  let placement () = [| Bitset.full 1 |] in
  let faults =
    Trace.of_events ~m:1 [ outage ~machine:0 ~time:5.0 ~until:8.0 ]
  in
  let restart =
    Engine.run_faulty instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  close "passive restarts from zero" 18.0 restart.Engine.makespan;
  close "passive wastes the whole attempt" 5.0 restart.Engine.wasted;
  let metrics = Metrics.create () in
  let outcome, events =
    Engine.run_faulty_traced
      ~recovery:(Recovery.make ~checkpoint_interval:2.0 ())
      ~metrics instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  checki "completes" 1 outcome.Engine.completed;
  close "resume keeps the banked 4 units" 14.0 outcome.Engine.makespan;
  close "only the unbanked unit is wasted" 1.0 outcome.Engine.wasted;
  checki "one resume" 1
    (counter outcome.Engine.metrics "engine.checkpoint_resumes");
  checkb "resume event carries the banked progress" true
    (List.exists
       (function
         | Engine.Checkpoint_resumed { time; machine = 0; task = 0; progress }
           ->
             time = 8.0 && progress = 4.0
         | _ -> false)
       events)

let crash_destroys_checkpoint () =
  (* Same scenario, but the machine crashes (at 9) right after rejoining
     and a second machine holds the data: the checkpoint was local to
     machine 0's disk, so machine 1 restarts the task from zero. *)
  let faults =
    Trace.of_events ~m:2
      [
        outage ~machine:0 ~time:5.0 ~until:8.0; crash ~machine:0 ~time:9.0;
      ]
  in
  (* Machine 1 holds t0's data too but is pinned down by its own long
     task, so the checkpointed resume on m0 happens first; only after
     the crash does m1 pick t0 up — from scratch. *)
  let instance =
    Instance.of_ests ~m:2 ~alpha:Uncertainty.alpha_exact [| 10.0; 20.0 |]
  in
  let realization = Realization.exact instance in
  let placement = [| Bitset.full 2; Bitset.singleton 2 1 |] in
  let outcome =
    Engine.run_faulty
      ~recovery:(Recovery.make ~checkpoint_interval:2.0 ())
      instance realization ~faults ~placement
      ~order:(submission_order 2)
  in
  checki "both complete" 2 outcome.Engine.completed;
  let e = finished_entry outcome 0 in
  checki "survivor picks the task up" 1 e.Schedule.machine;
  close "from scratch, after its own task" 20.0 e.Schedule.start;
  close "no banked progress survives a crash" 30.0 e.Schedule.finish

let backoff_delays_redispatch () =
  (* One task of 3 on one machine, outage [2, 4). With max_retries the
     machine is distrusted for detection_latency * 2^(blinks-1) after
     rejoining: restart at 5 instead of 4. *)
  let instance =
    Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| 3.0 |]
  in
  let realization = Realization.exact instance in
  let placement () = [| Bitset.full 1 |] in
  let faults =
    Trace.of_events ~m:1 [ outage ~machine:0 ~time:2.0 ~until:4.0 ]
  in
  let eager =
    Engine.run_faulty
      ~recovery:(Recovery.make ~detection_latency:1.0 ())
      instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  close "no retries cap: restart on rejoin" 7.0 eager.Engine.makespan;
  let backoff =
    Engine.run_faulty
      ~recovery:(Recovery.make ~detection_latency:1.0 ~max_retries:2 ())
      instance realization ~faults ~placement:(placement ())
      ~order:(submission_order 1)
  in
  close "backoff delays the restart past the rejoin" 8.0
    backoff.Engine.makespan

(* ------------------------ qcheck properties ------------------------ *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario_print (n, m, k, p, seed) =
  Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed

let scenario = QCheck.make ~print:scenario_print scenario_gen

(* Mixed fault regime: crashes, outages, and slowdowns merged into one
   trace, sometimes with speculation on — the widest surface the golden
   equivalence must hold over. *)
let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let sizes = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:4.0) in
  let instance =
    Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ~sizes ests
  in
  let realization = Realization.uniform_factor instance rng in
  let placement =
    Array.init n (fun j ->
        Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults =
    Trace.merge
      (Trace.random_crashes rng ~m ~p ~horizon)
      (Trace.merge
         (Trace.random_outages rng ~m ~p ~horizon ~duration:(0.5, 5.0))
         (Trace.random_slowdowns rng ~m ~p ~horizon ~factor:(0.2, 0.9)))
  in
  (instance, realization, placement, order, faults)

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let outcomes_identical (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.completed = b.Engine.completed
  && a.Engine.stranded = b.Engine.stranded
  && a.Engine.makespan = b.Engine.makespan
  && a.Engine.wasted = b.Engine.wasted
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Engine.Stranded, Engine.Stranded -> true
         | Engine.Finished e, Engine.Finished f -> entries_equal e f
         | _ -> false)
       a.Engine.fates b.Engine.fates
  && Json.to_string (Metrics.to_json a.Engine.metrics)
     = Json.to_string (Metrics.to_json b.Engine.metrics)

(* THE golden property of this layer: the [none] policy is bit-for-bit
   the pre-recovery engine — fates, floats, events, and metrics — so
   every downstream result obtained without a recovery flag is
   unchanged by this code existing. 320 scenarios x mixed fault kinds. *)
let prop_none_is_golden =
  QCheck.Test.make
    ~name:"recovery=none is bit-for-bit the passive engine" ~count:320
    scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults = build s in
      let speculation = if seed mod 3 = 0 then Some 1.3 else None in
      let m_a = Metrics.create () and m_b = Metrics.create () in
      let a, ev_a =
        Engine.run_faulty_traced ?speculation ~metrics:m_a instance realization
          ~faults ~placement ~order
      in
      let b, ev_b =
        Engine.run_faulty_traced ?speculation ~recovery:Recovery.none
          ~metrics:m_b instance realization ~faults ~placement ~order
      in
      outcomes_identical a b && ev_a = ev_b)

(* The neutral-parameter policy ([make ()]) drives the recovery code
   path — data copies, transfer arrays, orphan bookkeeping — yet all of
   it must be behaviourally invisible. This is the test that would catch
   an accidental divergence in the refactored internals. *)
let prop_neutral_policy_is_transparent =
  QCheck.Test.make
    ~name:"recovery with neutral parameters changes nothing" ~count:320
    scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults = build s in
      let speculation = if seed mod 3 = 0 then Some 1.3 else None in
      let m_a = Metrics.create () and m_b = Metrics.create () in
      let a, ev_a =
        Engine.run_faulty_traced ?speculation ~metrics:m_a instance realization
          ~faults ~placement ~order
      in
      let b, ev_b =
        Engine.run_faulty_traced ?speculation ~recovery:(Recovery.make ())
          ~metrics:m_b instance realization ~faults ~placement ~order
      in
      outcomes_identical a b && ev_a = ev_b)

(* Healing monotonicity, in the regime where it is a theorem: crashes at
   distinct times spaced wider than the detection latency, at least one
   machine never crashing, instantaneous transfers. Every crash is then
   fully healed before the next one lands, so nothing ever strands —
   while the passive engine on the same trace strands freely. *)
let heal_scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 2 5 in
    let* crashes = int_range 1 (m - 1) in
    let* lat = float_range 0.0 2.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, crashes, lat, seed))

let heal_scenario =
  QCheck.make
    ~print:(fun (n, m, c, lat, seed) ->
      Printf.sprintf "n=%d m=%d crashes=%d lat=%.3f seed=%d" n m c lat seed)
    heal_scenario_gen

let prop_healing_unstrands =
  QCheck.Test.make
    ~name:"spaced crashes + instant healing never strand a task" ~count:300
    heal_scenario (fun (n, m, crashes, lat, seed) ->
      let rng = Rng.create ~seed () in
      let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
      let instance = Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ests in
      let realization = Realization.uniform_factor instance rng in
      let placement () =
        Array.init n (fun j -> Bitset.singleton m (j mod m))
      in
      let order = Instance.lpt_order instance in
      (* Crash machines 0..crashes-1 (machine m-1 always survives) at
         times spaced by more than the detection latency. *)
      let gap = lat +. 1.0 in
      let faults =
        Trace.of_events ~m
          (List.init crashes (fun i ->
               crash ~machine:i
                 ~time:(Rng.float_range rng ~lo:0.1 ~hi:1.0
                       +. (float_of_int i *. gap))))
      in
      let recovery =
        Recovery.make ~detection_latency:lat ~rereplication_target:(Recovery.Fixed 2)
          ~bandwidth:infinity ()
      in
      let healed =
        Engine.run_faulty ~recovery instance realization ~faults
          ~placement:(placement ()) ~order
      in
      let passive =
        Engine.run_faulty instance realization ~faults
          ~placement:(placement ()) ~order
      in
      healed.Engine.stranded = []
      && healed.Engine.completed = n
      && List.length healed.Engine.stranded
         <= List.length passive.Engine.stranded)

(* Checkpoint dominance, in the regime where it is pointwise: one task
   on one machine under outage-only traces. Banked progress can only
   bring the single finish time forward. (With multiple tasks and
   machines, list-scheduling anomalies a la Graham can invert it.) *)
let ckpt_scenario_gen =
  QCheck.Gen.(
    let* outages = int_range 1 4 in
    let* interval = float_range 0.1 3.0 in
    let* seed = int_bound 1_000_000 in
    return (outages, interval, seed))

let ckpt_scenario =
  QCheck.make
    ~print:(fun (o, c, seed) ->
      Printf.sprintf "outages=%d c=%.3f seed=%d" o c seed)
    ckpt_scenario_gen

let prop_checkpoint_dominates_restart =
  QCheck.Test.make
    ~name:"checkpointing never worsens a single-machine outage run"
    ~count:300 ckpt_scenario (fun (outages, interval, seed) ->
      let rng = Rng.create ~seed () in
      let actual = Rng.float_range rng ~lo:2.0 ~hi:15.0 in
      let instance =
        Instance.of_ests ~m:1 ~alpha:Uncertainty.alpha_exact [| actual |]
      in
      let realization = Realization.exact instance in
      let placement () = [| Bitset.full 1 |] in
      let order = submission_order 1 in
      let events =
        List.init outages (fun _ ->
            let t = Rng.float_range rng ~lo:0.0 ~hi:(3.0 *. actual) in
            let d = Rng.float_range rng ~lo:0.2 ~hi:4.0 in
            outage ~machine:0 ~time:t ~until:(t +. d))
      in
      let faults = Trace.of_events ~m:1 events in
      let restart =
        Engine.run_faulty instance realization ~faults
          ~placement:(placement ()) ~order
      in
      let ckpt =
        Engine.run_faulty
          ~recovery:(Recovery.make ~checkpoint_interval:interval ())
          instance realization ~faults ~placement:(placement ()) ~order
      in
      restart.Engine.completed = 1
      && ckpt.Engine.completed = 1
      && ckpt.Engine.makespan <= restart.Engine.makespan +. 1e-9
      && ckpt.Engine.wasted <= restart.Engine.wasted +. 1e-9)

(* Locality under healing: a task may legitimately finish on a machine
   outside its original placement, but only after a completed transfer
   delivered the data there. *)
let prop_transfer_locality =
  QCheck.Test.make
    ~name:"off-placement finishes are explained by a completed transfer"
    ~count:300 scenario (fun s ->
      let instance, realization, placement, order, faults = build s in
      let recovery =
        Recovery.make ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:2.0 ()
      in
      let original = Array.map Bitset.copy placement in
      let outcome, events =
        Engine.run_faulty_traced ~recovery instance realization ~faults
          ~placement ~order
      in
      Array.for_all (fun j ->
          match outcome.Engine.fates.(j) with
          | Engine.Stranded -> true
          | Engine.Finished e ->
              Bitset.mem original.(j) e.Schedule.machine
              || List.exists
                   (function
                     | Engine.Rereplication_completed { task; dst; _ } ->
                         task = j && dst = e.Schedule.machine
                     | _ -> false)
                   events)
        (Array.init (Instance.n instance) (fun j -> j)))

(* Variable-degree plumbing, pinned against the fixed path: on the ring
   placements every task has exactly [k] replicas, so healing back to
   each task's own phase-1 degree must be bit-for-bit healing to
   [Fixed k] — outcomes, floats, events, and metrics. *)
let prop_degree_equals_fixed_on_uniform =
  QCheck.Test.make
    ~name:"Degree target = Fixed k on uniform-degree placements" ~count:300
    scenario (fun ((_, _, k, _, _) as s) ->
      let instance, realization, placement, order, faults = build s in
      let run target =
        let recovery =
          Recovery.make ~detection_latency:0.3 ~rereplication_target:target
            ~bandwidth:2.0 ~checkpoint_interval:1.0 ()
        in
        Engine.run_faulty_traced ~recovery instance realization ~faults
          ~placement:(Array.map Bitset.copy placement)
          ~order
      in
      let a, ev_a = run (Recovery.Fixed k) in
      let b, ev_b = run Recovery.Degree in
      outcomes_identical a b && ev_a = ev_b)

(* Recovery runs remain deterministic: two identical invocations produce
   identical outcomes, events included. *)
let prop_recovery_deterministic =
  QCheck.Test.make ~name:"recovery runs are deterministic" ~count:150 scenario
    (fun s ->
      let instance, realization, placement, order, faults = build s in
      let recovery =
        Recovery.make ~detection_latency:0.5 ~rereplication_target:(Recovery.Fixed 2)
          ~bandwidth:1.0 ~checkpoint_interval:1.0 ~max_retries:2 ()
      in
      let run () =
        Engine.run_faulty_traced ~recovery instance realization ~faults
          ~placement:(Array.map Bitset.copy placement)
          ~order
      in
      let a, ev_a = run () in
      let b, ev_b = run () in
      outcomes_identical a b && ev_a = ev_b)

let () =
  Alcotest.run "recovery"
    [
      ( "policy",
        [
          Alcotest.test_case "validation" `Quick policy_validation;
          Alcotest.test_case "target grammar" `Quick target_grammar;
          Alcotest.test_case "backoff schedule" `Quick backoff_values;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "healer rescues a singleton task" `Quick
            heal_rescues_singleton;
          Alcotest.test_case "detection latency delays re-dispatch" `Quick
            detection_latency_delays_redispatch;
          Alcotest.test_case "checkpoint resumes on rejoin" `Quick
            checkpoint_resume_on_rejoin;
          Alcotest.test_case "a crash destroys the local checkpoint" `Quick
            crash_destroys_checkpoint;
          Alcotest.test_case "backoff distrusts a blinking machine" `Quick
            backoff_delays_redispatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_none_is_golden;
            prop_neutral_policy_is_transparent;
            prop_healing_unstrands;
            prop_checkpoint_dominates_restart;
            prop_transfer_locality;
            prop_degree_equals_fixed_on_uniform;
            prop_recovery_deterministic;
          ] );
    ]
