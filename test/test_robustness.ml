(* Tests for the robustness measures. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Summary = Usched_stats.Summary
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

let instance ?(alpha = 2.0) () =
  Instance.of_ests ~m:3
    ~alpha:(Uncertainty.alpha alpha)
    [| 6.0; 5.0; 4.0; 3.0; 2.0; 2.0; 1.0; 1.0 |]

let realize instance rng = Realization.uniform_factor instance rng

let profile_counts_samples () =
  let rng = Rng.create ~seed:1 () in
  let p =
    Core.Robustness.profile ~samples:37 ~realize ~rng
      Core.No_replication.lpt_no_choice (instance ())
  in
  Alcotest.(check int) "samples" 37 (Summary.count p.Core.Robustness.degradation);
  Alcotest.(check int) "samples" 37 (Summary.count p.Core.Robustness.ratio)

let no_uncertainty_no_degradation () =
  (* alpha = 1: every realization equals the estimates, so degradation
     is exactly 1. *)
  let rng = Rng.create ~seed:2 () in
  let p =
    Core.Robustness.profile ~samples:10 ~realize ~rng
      Core.No_replication.lpt_no_choice (instance ~alpha:1.0 ())
  in
  close "mean degradation 1" 1.0 (Summary.mean p.Core.Robustness.degradation);
  close "max degradation 1" 1.0 (Summary.max p.Core.Robustness.degradation)

let degradation_bounded_by_alpha () =
  (* A static placement's makespan can grow by at most alpha (all its
     tasks inflated) and shrink by at most 1/alpha. *)
  let alpha = 2.0 in
  let rng = Rng.create ~seed:3 () in
  let p =
    Core.Robustness.profile ~samples:200 ~realize ~rng
      Core.No_replication.lpt_no_choice (instance ~alpha ())
  in
  checkb "within [1/alpha, alpha]" true
    (Summary.min p.Core.Robustness.degradation >= (1.0 /. alpha) -. 1e-9
    && Summary.max p.Core.Robustness.degradation <= alpha +. 1e-9)

let worst_ratio_is_max () =
  let rng = Rng.create ~seed:4 () in
  let p =
    Core.Robustness.profile ~samples:50 ~realize ~rng
      Core.Full_replication.lpt_no_restriction (instance ())
  in
  close "worst = summary max" (Summary.max p.Core.Robustness.ratio)
    p.Core.Robustness.worst_ratio

let replication_more_robust () =
  (* On this instance family, full replication's mean degradation under
     extreme two-point noise is at most the static placement's: it can
     rebalance. *)
  let inst = instance () in
  let extreme instance rng = Realization.extremes ~p_high:0.5 instance rng in
  let mean_degradation algo seed =
    let rng = Rng.create ~seed () in
    Summary.mean
      (Core.Robustness.profile ~samples:300 ~realize:extreme ~rng algo inst)
        .Core.Robustness.degradation
  in
  let static = mean_degradation Core.No_replication.lpt_no_choice 5 in
  let flexible = mean_degradation Core.Full_replication.lpt_no_restriction 5 in
  checkb "flexible schedule degrades less on average" true
    (flexible <= static +. 0.02)

let price_of_robustness_identity () =
  let rng = Rng.create ~seed:6 () in
  let price =
    Core.Robustness.price_of_robustness ~samples:20 ~realize ~rng
      ~baseline:Core.No_replication.lpt_no_choice
      Core.No_replication.lpt_no_choice (instance ())
  in
  close "self comparison is 1" 1.0 price

let price_of_robustness_favors_replication () =
  let rng = Rng.create ~seed:7 () in
  let price =
    Core.Robustness.price_of_robustness ~samples:200
      ~realize:(fun instance rng -> Realization.extremes ~p_high:0.5 instance rng)
      ~rng
      ~baseline:Core.No_replication.lpt_no_choice
      Core.Full_replication.lpt_no_restriction (instance ())
  in
  checkb "replication pays on average" true (price <= 1.02)

let () =
  Alcotest.run "robustness"
    [
      ( "profile",
        [
          Alcotest.test_case "sample counts" `Quick profile_counts_samples;
          Alcotest.test_case "alpha=1 no degradation" `Quick
            no_uncertainty_no_degradation;
          Alcotest.test_case "degradation in [1/a, a]" `Quick
            degradation_bounded_by_alpha;
          Alcotest.test_case "worst = max" `Quick worst_ratio_is_max;
          Alcotest.test_case "replication robustness" `Quick replication_more_robust;
        ] );
      ( "price",
        [
          Alcotest.test_case "identity" `Quick price_of_robustness_identity;
          Alcotest.test_case "favors replication" `Quick
            price_of_robustness_favors_replication;
        ] );
    ]
