(* THE golden gate of the zero-allocation engine rewrite: the live
   engine against [Reference_engine] — the pre-refactor engine frozen
   verbatim — bit for bit. Schedules, fates, floats, chronological
   event logs, and metrics snapshots must be identical across mixed
   fault regimes, every built-in dispatch policy, speculation on/off,
   metrics on/off, recovery none/neutral/active, heterogeneous speeds,
   and the streaming arrival mode. Any behavioural drift the SoA heap,
   flat machine state, or allocation-free loops introduced fails
   here. *)

module Engine = Usched_desim.Engine
module Dispatch = Usched_desim.Dispatch
module Schedule = Usched_desim.Schedule
module Bitset = Usched_model.Bitset
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Trace = Usched_faults.Trace
module Recovery = Usched_faults.Recovery
module Metrics = Usched_obs.Metrics
module Json = Usched_report.Json
module Rng = Usched_prng.Rng

(* ------------------------- scenario space --------------------------- *)

let scenario_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* m = int_range 1 5 in
    let* k = int_range 1 m in
    let* p = float_range 0.0 1.0 in
    let* seed = int_bound 1_000_000 in
    return (n, m, k, p, seed))

let scenario =
  QCheck.make
    ~print:(fun (n, m, k, p, seed) ->
      Printf.sprintf "n=%d m=%d k=%d p=%.3f seed=%d" n m k p seed)
    scenario_gen

let build (n, m, k, p, seed) =
  let rng = Rng.create ~seed () in
  let ests = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:10.0) in
  let sizes = Array.init n (fun _ -> Rng.float_range rng ~lo:0.5 ~hi:4.0) in
  let instance =
    Instance.of_ests ~m ~alpha:(Uncertainty.alpha 2.0) ~sizes ests
  in
  let realization = Realization.uniform_factor instance rng in
  let placement () =
    Array.init n (fun j ->
        Bitset.of_list m (List.init k (fun i -> (j + i) mod m)))
  in
  let order = Instance.lpt_order instance in
  let horizon = 2.0 *. Realization.total realization in
  let faults =
    Trace.merge
      (Trace.random_crashes rng ~m ~p ~horizon)
      (Trace.merge
         (Trace.random_outages rng ~m ~p ~horizon ~duration:(0.5, 5.0))
         (Trace.random_slowdowns rng ~m ~p ~horizon ~factor:(0.2, 0.9)))
  in
  (instance, realization, placement, order, faults, rng)

(* The recovery/speculation/metrics axes, derived from the seed so the
   320 scenarios spread over the whole grid. *)
let variants seed =
  let speculation = if seed mod 3 = 0 then Some 1.3 else None in
  let metrics_on = seed mod 2 = 0 in
  let recovery =
    match seed mod 5 with
    | 0 | 1 ->
        Recovery.make ~detection_latency:0.5
          ~rereplication_target:(Recovery.Fixed 2) ~bandwidth:1.0
          ~checkpoint_interval:1.0 ~max_retries:2 ()
    | 2 -> Recovery.make ()
    | _ -> Recovery.none
  in
  let speeds m =
    if seed mod 7 < 3 then
      Some (Array.init m (fun i -> 0.5 +. (0.5 *. float_of_int (i + 1))))
    else None
  in
  (speculation, metrics_on, recovery, speeds)

let registry metrics_on =
  if metrics_on then Metrics.create () else Metrics.disabled

let entries_equal (a : Schedule.entry) (b : Schedule.entry) =
  a.Schedule.machine = b.Schedule.machine
  && a.Schedule.start = b.Schedule.start
  && a.Schedule.finish = b.Schedule.finish

let outcomes_identical (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.completed = b.Engine.completed
  && a.Engine.stranded = b.Engine.stranded
  && a.Engine.makespan = b.Engine.makespan
  && a.Engine.wasted = b.Engine.wasted
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Engine.Stranded, Engine.Stranded -> true
         | Engine.Finished e, Engine.Finished f -> entries_equal e f
         | _ -> false)
       a.Engine.fates b.Engine.fates
  && Json.to_string (Metrics.to_json a.Engine.metrics)
     = Json.to_string (Metrics.to_json b.Engine.metrics)

(* ------------------------------ faulty ------------------------------ *)

let prop_faulty_matches_reference =
  QCheck.Test.make
    ~name:"faulty engine is bit-for-bit the frozen reference" ~count:320
    scenario (fun ((_, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults, _ = build s in
      let speculation, metrics_on, recovery, _ = variants seed in
      List.for_all
        (fun dispatch ->
          let a, ev_a =
            Engine.run_faulty_traced ?speculation ~dispatch ~recovery
              ~metrics:(registry metrics_on) instance realization ~faults
              ~placement:(placement ()) ~order
          in
          let b, ev_b =
            Reference_engine.run_faulty_traced ?speculation ~dispatch
              ~recovery ~metrics:(registry metrics_on) instance realization
              ~faults ~placement:(placement ()) ~order
          in
          outcomes_identical a b && ev_a = ev_b)
        Dispatch.builtin)

(* ----------------------------- healthy ------------------------------ *)

let prop_healthy_matches_reference =
  QCheck.Test.make
    ~name:"healthy engine is bit-for-bit the frozen reference" ~count:320
    scenario (fun ((_, m, _, _, seed) as s) ->
      let instance, realization, placement, order, _, _ = build s in
      let _, metrics_on, _, speeds = variants seed in
      let speeds = speeds m in
      List.for_all
        (fun dispatch ->
          let a, ev_a =
            Engine.run_traced ?speeds ~dispatch
              ~metrics:(registry metrics_on) instance realization
              ~placement:(placement ()) ~order
          in
          let b, ev_b =
            Reference_engine.run_traced ?speeds ~dispatch
              ~metrics:(registry metrics_on) instance realization
              ~placement:(placement ()) ~order
          in
          ev_a = ev_b
          && Array.for_all2 entries_equal
               (Array.init (Schedule.n a) (Schedule.entry a))
               (Array.init (Schedule.n b) (Schedule.entry b)))
        Dispatch.builtin)

(* ----------------------------- streaming ---------------------------- *)

let prop_stream_matches_reference =
  QCheck.Test.make
    ~name:"streaming engine is bit-for-bit the frozen reference" ~count:200
    scenario (fun ((n, _, _, _, seed) as s) ->
      let instance, realization, placement, order, faults, rng = build s in
      let speculation, metrics_on, recovery, _ = variants seed in
      let arrivals =
        Array.init n (fun _ -> Rng.float_range rng ~lo:0.0 ~hi:5.0)
      in
      let a, ev_a =
        Engine.run_stream_traced ?speculation ~recovery
          ~metrics:(registry metrics_on) ~faults instance realization
          ~arrivals ~placement:(placement ()) ~order
      in
      let b, ev_b =
        Reference_engine.run_stream_traced ?speculation ~recovery
          ~metrics:(registry metrics_on) ~faults instance realization
          ~arrivals ~placement:(placement ()) ~order
      in
      outcomes_identical a.Engine.outcome b.Engine.outcome
      && a.Engine.latencies = b.Engine.latencies
      && ev_a = ev_b)

(* ------------------------------ suite ------------------------------- *)

let () =
  Alcotest.run "golden_engine"
    [
      ( "golden",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_faulty_matches_reference;
            prop_healthy_matches_reference;
            prop_stream_matches_reference;
          ] );
    ]
