(* Tests for scenario-based robust selection. *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

let instance () =
  Instance.of_ests ~m:4 ~alpha:(Uncertainty.alpha 2.0)
    [| 8.0; 7.0; 6.0; 5.0; 4.0; 3.0; 2.0; 2.0; 1.0; 1.0 |]

let realize instance rng = Realization.extremes ~p_high:0.3 instance rng

let scenarios ?(count = 12) seed =
  Core.Scenarios.sample ~count ~realize ~rng:(Rng.create ~seed ()) (instance ())

let sample_counts () =
  Alcotest.(check int) "count" 12 (List.length (scenarios 1));
  checkb "count < 1 rejected" true
    (try
       ignore
         (Core.Scenarios.sample ~count:0 ~realize ~rng:(Rng.create ()) (instance ()));
       false
     with Invalid_argument _ -> true)

let evaluate_consistency () =
  let e =
    Core.Scenarios.evaluate Core.Full_replication.lpt_no_restriction (instance ())
      (scenarios 2)
  in
  Alcotest.(check int) "one makespan per scenario" 12
    (Array.length e.Core.Scenarios.per_scenario);
  close "worst is max"
    (Array.fold_left Float.max neg_infinity e.Core.Scenarios.per_scenario)
    e.Core.Scenarios.worst;
  close "mean is mean"
    (Array.fold_left ( +. ) 0.0 e.Core.Scenarios.per_scenario /. 12.0)
    e.Core.Scenarios.mean;
  checkb "worst >= mean" true (e.Core.Scenarios.worst >= e.Core.Scenarios.mean)

let evaluation_commits_phase1_once () =
  (* Deterministic phase 1: two evaluations agree exactly. *)
  let s = scenarios 3 in
  let a = Core.Scenarios.evaluate Core.No_replication.lpt_no_choice (instance ()) s in
  let b = Core.Scenarios.evaluate Core.No_replication.lpt_no_choice (instance ()) s in
  Alcotest.(check (array (float 0.0))) "reproducible"
    a.Core.Scenarios.per_scenario b.Core.Scenarios.per_scenario

let select_picks_best () =
  let s = scenarios 4 in
  let portfolio =
    [
      Core.No_replication.lpt_no_choice;
      Core.Full_replication.lpt_no_restriction;
    ]
  in
  let chosen =
    Core.Scenarios.select Core.Scenarios.Minimize_worst ~portfolio (instance ()) s
  in
  (* Whatever is chosen must weakly beat every member on the criterion. *)
  List.iter
    (fun algo ->
      let e = Core.Scenarios.evaluate algo (instance ()) s in
      checkb "chosen is minimal" true
        (chosen.Core.Scenarios.worst <= e.Core.Scenarios.worst +. 1e-9))
    portfolio

let select_mean_criterion () =
  let s = scenarios 5 in
  let portfolio = Core.Scenarios.default_portfolio ~m:4 in
  let chosen =
    Core.Scenarios.select Core.Scenarios.Minimize_mean ~portfolio (instance ()) s
  in
  List.iter
    (fun algo ->
      let e = Core.Scenarios.evaluate algo (instance ()) s in
      checkb "chosen minimizes mean" true
        (chosen.Core.Scenarios.mean <= e.Core.Scenarios.mean +. 1e-9))
    portfolio

let select_rejects_degenerate () =
  checkb "empty portfolio" true
    (try
       ignore
         (Core.Scenarios.select Core.Scenarios.Minimize_worst ~portfolio:[]
            (instance ()) (scenarios 6));
       false
     with Invalid_argument _ -> true);
  checkb "empty scenarios" true
    (try
       ignore
         (Core.Scenarios.evaluate Core.No_replication.lpt_no_choice (instance ())
            []);
       false
     with Invalid_argument _ -> true)

let default_portfolio_contents () =
  let portfolio = Core.Scenarios.default_portfolio ~m:6 in
  (* no-repl + groups k in {2, 3} + budgeted + full = 5 members. *)
  Alcotest.(check int) "size" 5 (List.length portfolio);
  checkb "starts with no replication" true
    ((List.hd portfolio).Core.Two_phase.name = "LPT-No Choice")

let default_portfolio_matches_registry () =
  (* The portfolio is exactly the registry derivation built at m, member
     by member, and every member's spec string parses back. *)
  List.iter
    (fun m ->
      let specs = Core.Strategy.default_portfolio ~m in
      let portfolio = Core.Scenarios.default_portfolio ~m in
      Alcotest.(check (list string))
        (Printf.sprintf "names at m=%d" m)
        (List.map Core.Strategy.name specs)
        (List.map (fun a -> a.Core.Two_phase.name) portfolio);
      List.iter
        (fun spec ->
          checkb "spec string parses back" true
            (Core.Strategy.of_string (Core.Strategy.to_string spec) = Ok spec))
        specs)
    [ 2; 4; 6; 7; 12 ]

let select_winner_stable_across_refactor () =
  (* Fixed-seed selection must pick the same winner the pre-refactor
     hardcoded portfolio produced: the members (and their order) are
     unchanged, so the selected algorithm's identity is pinned here. *)
  let s = scenarios 7 in
  let portfolio = Core.Scenarios.default_portfolio ~m:4 in
  let old_style =
    [
      Core.No_replication.lpt_no_choice;
      Core.Group_replication.ls_group ~k:2;
      Core.Budgeted.uniform ~k:2;
      Core.Full_replication.lpt_no_restriction;
    ]
  in
  Alcotest.(check (list string))
    "same members as the pre-refactor list"
    (List.map (fun a -> a.Core.Two_phase.name) old_style)
    (List.map (fun a -> a.Core.Two_phase.name) portfolio);
  List.iter
    (fun criterion ->
      let now =
        Core.Scenarios.select criterion ~portfolio (instance ()) s
      in
      let before =
        Core.Scenarios.select criterion ~portfolio:old_style (instance ()) s
      in
      Alcotest.(check string)
        "same winner"
        before.Core.Scenarios.algorithm.Core.Two_phase.name
        now.Core.Scenarios.algorithm.Core.Two_phase.name;
      close "same worst" before.Core.Scenarios.worst now.Core.Scenarios.worst;
      close "same mean" before.Core.Scenarios.mean now.Core.Scenarios.mean)
    [ Core.Scenarios.Minimize_worst; Core.Scenarios.Minimize_mean ]

let () =
  Alcotest.run "scenarios"
    [
      ( "unit",
        [
          Alcotest.test_case "sampling" `Quick sample_counts;
          Alcotest.test_case "evaluation" `Quick evaluate_consistency;
          Alcotest.test_case "reproducible" `Quick evaluation_commits_phase1_once;
          Alcotest.test_case "select worst-case" `Quick select_picks_best;
          Alcotest.test_case "select mean" `Quick select_mean_criterion;
          Alcotest.test_case "degenerate inputs" `Quick select_rejects_degenerate;
          Alcotest.test_case "default portfolio" `Quick default_portfolio_contents;
          Alcotest.test_case "portfolio matches registry" `Quick
            default_portfolio_matches_registry;
          Alcotest.test_case "select winner stable" `Quick
            select_winner_stable_across_refactor;
        ] );
    ]
