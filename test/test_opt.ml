(* Unit and property tests for the exact branch-and-bound solver. *)

module Opt = Usched_core.Opt
module Lb = Usched_core.Lower_bounds
module Assign = Usched_core.Assign

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let trivial_cases () =
  close "no tasks" 0.0 (Opt.makespan ~m:3 [||]);
  close "single task" 5.0 (Opt.makespan ~m:3 [| 5.0 |]);
  close "single machine" 6.0 (Opt.makespan ~m:1 [| 1.0; 2.0; 3.0 |])

let known_optimum () =
  (* (3,3,2,2,2) on 2 machines: optimum 6 = (3+3 | 2+2+2). *)
  close "perfect split" 6.0 (Opt.makespan ~m:2 [| 3.0; 3.0; 2.0; 2.0; 2.0 |])

let lpt_suboptimal_instance () =
  (* LPT gives 7 on the previous instance; B&B must find 6. *)
  let weights = [| 3.0; 3.0; 2.0; 2.0; 2.0 |] in
  close "LPT is 7 here" 7.0 (Assign.makespan (Assign.lpt ~m:2 ~weights));
  close "optimum is 6" 6.0 (Opt.makespan ~m:2 weights)

let partition_instance () =
  (* A subset-sum style instance: {7,5,4,3,3,2} splits into 12/12. *)
  close "even split" 12.0 (Opt.makespan ~m:2 [| 7.0; 5.0; 4.0; 3.0; 3.0; 2.0 |])

let more_machines_than_tasks () =
  close "longest task" 4.0 (Opt.makespan ~m:10 [| 4.0; 1.0; 2.0 |])

let identical_tasks_symmetry () =
  (* 12 identical tasks on 4 machines: 3 each. Symmetry pruning must make
     this fast; value is trivially 3. *)
  let r = Opt.solve ~m:4 (Array.make 12 1.0) in
  close "value" 3.0 r.Opt.value;
  checkb "optimal" true r.Opt.optimal;
  checkb "few nodes thanks to symmetry" true (r.Opt.nodes < 200_000)

let node_limit_degrades_gracefully () =
  (* A zero node budget aborts immediately: the result is the LPT
     incumbent, flagged non-optimal. *)
  let p = Array.init 24 (fun i -> 1.0 +. (float_of_int (i * i mod 17) /. 7.0)) in
  let r = Opt.solve ~node_limit:0 ~m:4 p in
  checkb "not optimal" false r.Opt.optimal;
  close "incumbent = LPT" (Assign.makespan (Assign.lpt ~m:4 ~weights:p)) r.Opt.value

let limited_incumbent_is_upper_bound () =
  (* A truncated search still returns a feasible (hence >= optimal)
     value. *)
  let p = Array.init 14 (fun i -> 1.0 +. (float_of_int (i * 13 mod 29) /. 5.0)) in
  let truncated = Opt.solve ~node_limit:50 ~m:3 p in
  let opt = Opt.makespan ~m:3 p in
  checkb "incumbent >= optimum" true (truncated.Opt.value >= opt -. 1e-9)

let invalid_inputs () =
  Alcotest.check_raises "m = 0" (Invalid_argument "Opt.solve: m must be >= 1")
    (fun () -> ignore (Opt.solve ~m:0 [| 1.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Opt.solve: negative time")
    (fun () -> ignore (Opt.solve ~m:1 [| -1.0 |]))

let prop_between_bounds =
  QCheck.Test.make ~name:"LB <= OPT <= LPT" ~count:300
    QCheck.(pair (int_range 1 5) (list_of_size Gen.(int_range 1 13) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let opt = Opt.makespan ~m p in
      let lb = Lb.best ~m p in
      let lpt = Assign.makespan (Assign.lpt ~m ~weights:p) in
      lb <= opt +. 1e-9 && opt <= lpt +. 1e-9)

let prop_matches_brute_force =
  QCheck.Test.make ~name:"matches brute-force enumeration" ~count:150
    QCheck.(pair (int_range 1 3) (list_of_size Gen.(int_range 1 8) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let n = Array.length p in
      (* Enumerate all m^n assignments. *)
      let best = ref infinity in
      let loads = Array.make m 0.0 in
      let rec go t =
        if t = n then begin
          let mk = Array.fold_left Float.max 0.0 loads in
          if mk < !best then best := mk
        end
        else
          for i = 0 to m - 1 do
            loads.(i) <- loads.(i) +. p.(t);
            go (t + 1);
            loads.(i) <- loads.(i) -. p.(t)
          done
      in
      go 0;
      Float.abs (Opt.makespan ~m p -. !best) < 1e-9)

let prop_scale_invariance =
  QCheck.Test.make ~name:"scaling times scales the optimum" ~count:150
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 10) (float_range 0.1 10.0)))
    (fun (m, p) ->
      let p = Array.of_list p in
      let opt = Opt.makespan ~m p in
      let scaled = Opt.makespan ~m (Array.map (fun x -> 3.0 *. x) p) in
      Float.abs (scaled -. (3.0 *. opt)) < 1e-6)

let () =
  Alcotest.run "opt"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick trivial_cases;
          Alcotest.test_case "known optimum" `Quick known_optimum;
          Alcotest.test_case "beats LPT" `Quick lpt_suboptimal_instance;
          Alcotest.test_case "partition" `Quick partition_instance;
          Alcotest.test_case "more machines than tasks" `Quick more_machines_than_tasks;
          Alcotest.test_case "symmetry pruning" `Quick identical_tasks_symmetry;
          Alcotest.test_case "node limit" `Quick node_limit_degrades_gracefully;
          Alcotest.test_case "truncated incumbent sound" `Quick
            limited_incumbent_is_upper_bound;
          Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_between_bounds; prop_matches_brute_force; prop_scale_invariance ] );
    ]
