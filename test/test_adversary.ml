(* Tests for the adversaries (worst-case realization constructions). *)

module Core = Usched_core
module Instance = Usched_model.Instance
module Realization = Usched_model.Realization
module Uncertainty = Usched_model.Uncertainty
module Schedule = Usched_desim.Schedule

let close = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let alpha = 2.0

let identical_instance ~lambda ~m =
  Instance.of_ests ~m ~alpha:(Uncertainty.alpha alpha)
    (Array.make (lambda * m) 1.0)

let theorem1_inflates_most_loaded () =
  (* 2 machines, 4 unit tasks placed 3-1 by hand. *)
  let instance = identical_instance ~lambda:2 ~m:2 in
  let placement = Core.Placement.singletons ~m:2 [| 0; 0; 0; 1 |] in
  let r = Core.Adversary.theorem1 instance placement in
  (* Tasks on machine 0 inflated to 2, the other deflated to 0.5. *)
  close "task 0 inflated" 2.0 (Realization.actual r 0);
  close "task 2 inflated" 2.0 (Realization.actual r 2);
  close "task 3 deflated" 0.5 (Realization.actual r 3)

let theorem1_deflates_replicated_tasks () =
  (* Replicated tasks are not pinned, so the adversary deflates them. *)
  let instance = identical_instance ~lambda:1 ~m:2 in
  let placement =
    Core.Placement.of_sets ~m:2
      [| Usched_model.Bitset.full 2; Usched_model.Bitset.singleton 2 1 |]
  in
  let r = Core.Adversary.theorem1 instance placement in
  close "replicated task deflated" 0.5 (Realization.actual r 0);
  close "pinned task inflated" 2.0 (Realization.actual r 1)

let theorem1_achieves_proof_ratio () =
  (* On the proof's instance, the realized ratio must match the
     construction's value (using the exact optimum). *)
  let m = 3 and lambda = 3 in
  let instance = identical_instance ~lambda ~m in
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  let realization = Core.Adversary.theorem1 instance placement in
  let schedule = algo.Core.Two_phase.phase2 instance placement realization in
  (* Online: one machine runs lambda inflated tasks. *)
  close "online makespan" (float_of_int lambda *. alpha)
    (Schedule.makespan schedule);
  let opt = Core.Opt.makespan ~m (Realization.actuals realization) in
  let ratio = Schedule.makespan schedule /. opt in
  (* Must be sandwiched between 1 and the Theorem-2 guarantee. *)
  checkb "sanity" true (ratio > 1.0);
  checkb "below guarantee" true
    (ratio <= Core.Guarantees.lpt_no_choice ~m ~alpha +. 1e-9)

let inflate_machine_targets_replicas_too () =
  let instance = identical_instance ~lambda:1 ~m:2 in
  let placement = Core.Placement.full ~m:2 ~n:2 in
  let r = Core.Adversary.inflate_machine 0 instance placement in
  (* Everything is on machine 0 (full replication), so all inflated. *)
  close "task 0" 2.0 (Realization.actual r 0);
  close "task 1" 2.0 (Realization.actual r 1)

let ratio_helper_consistent () =
  let instance = identical_instance ~lambda:2 ~m:2 in
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  let run r = algo.Core.Two_phase.phase2 instance placement r in
  let opt actuals = Core.Opt.makespan ~m:2 actuals in
  let r = Core.Adversary.theorem1 instance placement in
  let direct =
    Schedule.makespan (run r) /. opt (Realization.actuals r)
  in
  close "same value" direct (Core.Adversary.ratio ~run ~opt r)

let greedy_flip_no_worse_than_start () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha alpha)
      [| 3.0; 2.0; 2.0; 1.0; 1.0 |]
  in
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  let run r = algo.Core.Two_phase.phase2 instance placement r in
  let opt actuals = Core.Opt.makespan ~m:2 actuals in
  let all_low =
    Realization.of_factors instance (Array.make 5 (1.0 /. alpha))
  in
  let start = Core.Adversary.ratio ~run ~opt all_low in
  let found =
    Core.Adversary.ratio ~run ~opt (Core.Adversary.greedy_flip ~run ~opt instance)
  in
  checkb "local search only improves" true (found >= start -. 1e-9)

let exhaustive_dominates_heuristics () =
  let instance =
    Instance.of_ests ~m:2 ~alpha:(Uncertainty.alpha alpha)
      [| 2.0; 2.0; 1.0; 1.0; 1.0; 1.0 |]
  in
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  let run r = algo.Core.Two_phase.phase2 instance placement r in
  let opt actuals = Core.Opt.makespan ~m:2 actuals in
  let _, best = Core.Adversary.exhaustive ~run ~opt instance in
  let theorem1 =
    Core.Adversary.ratio ~run ~opt (Core.Adversary.theorem1 instance placement)
  in
  let greedy =
    Core.Adversary.ratio ~run ~opt (Core.Adversary.greedy_flip ~run ~opt instance)
  in
  checkb "exhaustive >= theorem1" true (best >= theorem1 -. 1e-9);
  checkb "exhaustive >= greedy" true (best >= greedy -. 1e-9)

let exhaustive_rejects_large () =
  let instance = identical_instance ~lambda:11 ~m:2 in
  Alcotest.check_raises "n too large"
    (Invalid_argument "Adversary.exhaustive: instance too large") (fun () ->
      ignore
        (Core.Adversary.exhaustive
           ~run:(fun _ -> assert false)
           ~opt:(fun _ -> 1.0)
           instance))

let adversary_realizations_are_admissible () =
  (* Every adversary must stay inside the alpha interval (of_factors
     validates, so constructing them is the test). *)
  let instance = identical_instance ~lambda:2 ~m:3 in
  let algo = Core.No_replication.lpt_no_choice in
  let placement = algo.Core.Two_phase.phase1 instance in
  ignore (Core.Adversary.theorem1 instance placement);
  ignore (Core.Adversary.inflate_machine 1 instance placement);
  let run r = algo.Core.Two_phase.phase2 instance placement r in
  let opt actuals = Core.Lower_bounds.best ~m:3 actuals in
  ignore (Core.Adversary.greedy_flip ~run ~opt instance);
  checkb "all constructions admissible" true true

let () =
  Alcotest.run "adversary"
    [
      ( "theorem1",
        [
          Alcotest.test_case "inflates most loaded" `Quick
            theorem1_inflates_most_loaded;
          Alcotest.test_case "deflates replicated" `Quick
            theorem1_deflates_replicated_tasks;
          Alcotest.test_case "achieves proof ratio" `Quick
            theorem1_achieves_proof_ratio;
        ] );
      ( "search adversaries",
        [
          Alcotest.test_case "inflate_machine" `Quick
            inflate_machine_targets_replicas_too;
          Alcotest.test_case "ratio helper" `Quick ratio_helper_consistent;
          Alcotest.test_case "greedy improves" `Quick greedy_flip_no_worse_than_start;
          Alcotest.test_case "exhaustive dominates" `Quick
            exhaustive_dominates_heuristics;
          Alcotest.test_case "exhaustive size guard" `Quick exhaustive_rejects_large;
          Alcotest.test_case "admissibility" `Quick
            adversary_realizations_are_admissible;
        ] );
    ]
