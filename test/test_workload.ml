(* Unit tests for workload generators. *)

module Workload = Usched_model.Workload
module Instance = Usched_model.Instance
module Uncertainty = Usched_model.Uncertainty
module Rng = Usched_prng.Rng

let checkb = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))
let alpha = Uncertainty.alpha 1.5

let gen ?size_spec spec ~n ~m =
  Workload.generate spec ?size_spec ~n ~m ~alpha (Rng.create ~seed:42 ())

let identical_tasks () =
  let inst = gen (Workload.Identical 3.0) ~n:10 ~m:2 in
  Alcotest.(check int) "n" 10 (Instance.n inst);
  for j = 0 to 9 do
    close "all equal" 3.0 (Instance.est inst j)
  done

let uniform_in_range () =
  let inst = gen (Workload.Uniform { lo = 2.0; hi = 5.0 }) ~n:500 ~m:4 in
  Array.iter
    (fun e -> checkb "in [2,5)" true (e >= 2.0 && e < 5.0))
    (Instance.ests inst)

let uniform_bad_range_rejected () =
  checkb "rejects lo > hi" true
    (try
       ignore (gen (Workload.Uniform { lo = 5.0; hi = 2.0 }) ~n:1 ~m:1);
       false
     with Invalid_argument _ -> true)

let exponential_positive () =
  let inst = gen (Workload.Exponential { mean = 2.0 }) ~n:500 ~m:4 in
  Array.iter (fun e -> checkb "positive" true (e > 0.0)) (Instance.ests inst)

let pareto_capped () =
  let inst =
    gen (Workload.Pareto { shape = 1.1; scale = 1.0; cap = 50.0 }) ~n:500 ~m:4
  in
  Array.iter
    (fun e -> checkb "in [scale, cap]" true (e >= 1.0 && e <= 50.0))
    (Instance.ests inst)

let bimodal_has_both_modes () =
  let inst =
    gen (Workload.Bimodal { p_long = 0.3; short_mean = 1.0; long_mean = 100.0 })
      ~n:500 ~m:4
  in
  let ests = Instance.ests inst in
  checkb "has short tasks" true (Array.exists (fun e -> e < 10.0) ests);
  checkb "has long tasks" true (Array.exists (fun e -> e > 50.0) ests)

let lpt_adversarial_structure () =
  let m = 4 in
  let inst = gen (Workload.Lpt_adversarial { m }) ~n:0 ~m in
  (* 2(m-1) paired tasks + 3 tasks of length m. *)
  Alcotest.(check int) "task count" ((2 * (m - 1)) + 3) (Instance.n inst);
  let ests = Instance.ests inst in
  let count v =
    Array.fold_left (fun acc e -> if Float.equal e v then acc + 1 else acc) 0 ests
  in
  Alcotest.(check int) "three tasks of length m" 3 (count (float_of_int m));
  Alcotest.(check int) "two of length 2m-1" 2 (count (float_of_int ((2 * m) - 1)))

let lpt_adversarial_is_tight () =
  (* On this family LPT must reach exactly 4/3 - 1/(3m) vs the optimum. *)
  let m = 5 in
  let inst = gen (Workload.Lpt_adversarial { m }) ~n:0 ~m in
  let p = Instance.ests inst in
  let lpt = Usched_core.Assign.makespan (Usched_core.Assign.lpt ~m ~weights:p) in
  let opt = Usched_core.Opt.makespan ~m p in
  close "LPT ratio is the classical worst case"
    (Usched_core.Guarantees.lpt_offline ~m)
    (lpt /. opt)

let sand_divides_total () =
  let inst = gen (Workload.Sand { total = 12.0 }) ~n:16 ~m:4 in
  Array.iter (fun e -> close "grain" 0.75 e) (Instance.ests inst);
  close "grains sum to the total" 12.0
    (Array.fold_left ( +. ) 0.0 (Instance.ests inst))

let bricks_identical () =
  let inst = gen (Workload.Bricks { size = 2.5 }) ~n:9 ~m:3 in
  Array.iter (fun e -> close "brick" 2.5 e) (Instance.ests inst)

let rocks_in_range () =
  let inst = gen (Workload.Rocks { lo = 3.0; hi = 9.0 }) ~n:300 ~m:4 in
  Array.iter
    (fun e -> checkb "in [3,9)" true (e >= 3.0 && e < 9.0))
    (Instance.ests inst)

let sand_bricks_rocks_rejections () =
  List.iter
    (fun (name, spec) ->
      checkb name true
        (try
           ignore (gen spec ~n:4 ~m:2);
           false
         with Invalid_argument _ -> true))
    [
      ("sand total 0", Workload.Sand { total = 0.0 });
      ("sand total nan", Workload.Sand { total = Float.nan });
      ("bricks size < 0", Workload.Bricks { size = -1.0 });
      ("bricks size inf", Workload.Bricks { size = Float.infinity });
      ("rocks inverted", Workload.Rocks { lo = 9.0; hi = 3.0 });
    ];
  checkb "sand needs a grain" true
    (try
       ignore (gen (Workload.Sand { total = 1.0 }) ~n:0 ~m:2);
       false
     with Invalid_argument _ -> true)

let speed_robust_suite_generates () =
  List.iter
    (fun (name, spec) ->
      let inst =
        Workload.generate spec ~n:20 ~m:4 ~alpha (Rng.create ~seed:1 ())
      in
      checkb (name ^ " nonempty") true (Instance.n inst > 0);
      Alcotest.(check string) "name matches" name (Workload.spec_name spec))
    (Workload.speed_robust_suite ~m:4)

let unit_sizes_default () =
  let inst = gen (Workload.Identical 1.0) ~n:5 ~m:2 in
  Array.iter (fun s -> close "unit" 1.0 s) (Instance.sizes inst)

let proportional_sizes () =
  let inst =
    gen ~size_spec:(Workload.Proportional 2.0)
      (Workload.Uniform { lo = 1.0; hi = 4.0 })
      ~n:100 ~m:2
  in
  Array.iteri
    (fun j s -> close "size = 2 est" (2.0 *. Instance.est inst j) s)
    (Instance.sizes inst)

let inverse_sizes () =
  let inst =
    gen ~size_spec:(Workload.Inverse 6.0)
      (Workload.Uniform { lo = 1.0; hi = 4.0 })
      ~n:100 ~m:2
  in
  Array.iteri
    (fun j s -> close "size = 6 / est" (6.0 /. Instance.est inst j) s)
    (Instance.sizes inst)

let uniform_sizes_range () =
  let inst =
    gen ~size_spec:(Workload.Uniform_sizes { lo = 1.0; hi = 2.0 })
      (Workload.Identical 1.0) ~n:200 ~m:2
  in
  Array.iter
    (fun s -> checkb "in range" true (s >= 1.0 && s < 2.0))
    (Instance.sizes inst)

let generation_is_deterministic () =
  let a = gen (Workload.Exponential { mean = 3.0 }) ~n:50 ~m:3 in
  let b = gen (Workload.Exponential { mean = 3.0 }) ~n:50 ~m:3 in
  Alcotest.(check (array (float 0.0))) "same seed, same instance"
    (Instance.ests a) (Instance.ests b)

let negative_n_rejected () =
  checkb "rejects n < 0" true
    (try
       ignore (gen (Workload.Identical 1.0) ~n:(-1) ~m:1);
       false
     with Invalid_argument _ -> true)

let standard_suite_generates () =
  List.iter
    (fun (name, spec) ->
      let inst =
        Workload.generate spec ~n:20 ~m:4 ~alpha (Rng.create ~seed:1 ())
      in
      checkb (name ^ " nonempty") true (Instance.n inst > 0);
      Alcotest.(check string) "name matches" name (Workload.spec_name spec))
    (Workload.standard_suite ~m:4)

let prop_all_specs_positive_estimates =
  QCheck.Test.make ~name:"every spec yields strictly positive estimates"
    ~count:100
    QCheck.(pair (int_range 1 60) (int_range 2 8))
    (fun (n, m) ->
      let rng = Rng.create ~seed:(n + (1000 * m)) () in
      List.for_all
        (fun (_, spec) ->
          let inst = Workload.generate spec ~n ~m ~alpha rng in
          Array.for_all (fun e -> e > 0.0) (Instance.ests inst)
          && Array.for_all (fun s -> s >= 0.0) (Instance.sizes inst))
        (Workload.standard_suite ~m))

let prop_sizes_follow_spec =
  QCheck.Test.make ~name:"size specs honour their definitions" ~count:100
    QCheck.(int_range 1 40)
    (fun n ->
      let rng = Rng.create ~seed:n () in
      let inst =
        Workload.generate
          (Workload.Uniform { lo = 1.0; hi = 9.0 })
          ~size_spec:(Workload.Proportional 3.0) ~n ~m:2 ~alpha rng
      in
      Array.for_all
        (fun j ->
          Float.abs (Instance.size inst j -. (3.0 *. Instance.est inst j)) < 1e-9)
        (Array.init n (fun j -> j)))

let () =
  Alcotest.run "workload"
    [
      ( "estimates",
        [
          Alcotest.test_case "identical" `Quick identical_tasks;
          Alcotest.test_case "uniform range" `Quick uniform_in_range;
          Alcotest.test_case "uniform bad range" `Quick uniform_bad_range_rejected;
          Alcotest.test_case "exponential positive" `Quick exponential_positive;
          Alcotest.test_case "pareto capped" `Quick pareto_capped;
          Alcotest.test_case "bimodal modes" `Quick bimodal_has_both_modes;
          Alcotest.test_case "lpt adversarial structure" `Quick
            lpt_adversarial_structure;
          Alcotest.test_case "lpt adversarial tightness" `Quick
            lpt_adversarial_is_tight;
          Alcotest.test_case "sand" `Quick sand_divides_total;
          Alcotest.test_case "bricks" `Quick bricks_identical;
          Alcotest.test_case "rocks" `Quick rocks_in_range;
          Alcotest.test_case "sand/bricks/rocks rejections" `Quick
            sand_bricks_rocks_rejections;
          Alcotest.test_case "speed-robust suite" `Quick
            speed_robust_suite_generates;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "unit default" `Quick unit_sizes_default;
          Alcotest.test_case "proportional" `Quick proportional_sizes;
          Alcotest.test_case "inverse" `Quick inverse_sizes;
          Alcotest.test_case "uniform sizes" `Quick uniform_sizes_range;
        ] );
      ( "framework",
        [
          Alcotest.test_case "deterministic" `Quick generation_is_deterministic;
          Alcotest.test_case "negative n" `Quick negative_n_rejected;
          Alcotest.test_case "standard suite" `Quick standard_suite_generates;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_all_specs_positive_estimates; prop_sizes_follow_spec ] );
    ]
